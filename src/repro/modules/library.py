"""Module registry: the DesignWare-surrogate component library.

:func:`make_module` builds a :class:`DatapathModule` — netlist plus golden
integer semantics plus the structural complexity features Section 5 of the
paper regresses against.

Width convention (DESIGN.md section 4): the ``width`` argument is the
*operand* width; ``DatapathModule.input_bits`` is the total number of module
input bits ``m`` the Hamming distance ranges over (``2w`` for two-operand
modules, ``w`` for absval).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..circuit.compiled import CompiledNetlist
from ..circuit.netlist import Netlist
from .spec import ParamSpec, resolve_spec
from .absval import absval as _absval_fn, golden_absval as _golden_absval
from .approx import (
    golden_lor_adder as _golden_lor_adder,
    golden_seg_adder as _golden_seg_adder,
    golden_trunc_adder as _golden_trunc_adder,
    lor_adder as _lor_adder,
    lor_adder_error_bound as _lor_bound,
    seg_adder as _seg_adder,
    seg_adder_error_bound as _seg_bound,
    trunc_adder as _trunc_adder,
    trunc_adder_error_bound as _trunc_bound,
)
from .rewrite import (
    csa_reordered_multiplier as _csa_reordered_fn,
    mac_reordered as _mac_reordered_fn,
)
from .adders import (
    carry_select_adder as _carry_select_adder,
    cla_adder as _cla_adder,
    kogge_stone_adder as _kogge_stone_adder,
    golden_adder as _golden_adder,
    golden_incrementer as _golden_incrementer,
    golden_subtractor as _golden_subtractor,
    incrementer as _incrementer,
    ripple_adder as _ripple_adder,
    ripple_subtractor as _ripple_subtractor,
)
from .datapath import (
    alu as _alu_fn,
    barrel_shifter as _barrel_shifter_fn,
    comparator as _comparator_fn,
    golden_alu as _golden_alu,
    golden_barrel_shifter as _golden_barrel_shifter,
    golden_comparator as _golden_comparator,
    golden_mux_word as _golden_mux_word,
    mux_word as _mux_word_fn,
)
from .dsp import (
    golden_leading_zero_counter as _golden_lzc,
    golden_register_bank as _golden_register_bank,
    register_bank as _register_bank_fn,
    golden_mac as _golden_mac,
    golden_min_max as _golden_min_max,
    golden_parity as _golden_parity,
    golden_popcount as _golden_popcount,
    leading_zero_counter as _lzc_fn,
    mac as _mac_fn,
    min_max as _min_max_fn,
    parity as _parity_fn,
    popcount as _popcount_fn,
)
from .multipliers import (
    booth_wallace_multiplier as _booth_wallace_fn,
    csa_multiplier as _csa_multiplier_fn,
    dadda_multiplier as _dadda_fn,
    golden_multiplier as _golden_multiplier,
)


@dataclass
class DatapathModule:
    """A generated datapath component ready for simulation and modeling.

    Attributes:
        kind: Registry name (e.g. ``"csa_multiplier"``).
        operand_specs: ``(name, width)`` per operand, in input-vector order.
        netlist: The structural netlist.
        golden: Integer reference function: takes one unsigned bit-pattern
            int per operand, returns the output bit pattern.  Always the
            *structural* truth — for approximate variants it computes the
            approximate result the netlist produces.
        output_width: Number of output bits.
        exact: For approximate variants, the parent kind's exact integer
            reference (error per transition is ``exact(...) -
            golden(...)``); ``None`` when the golden is already exact.
        params: Validated variant parameters (empty for plain kinds).
    """

    kind: str
    operand_specs: Tuple[Tuple[str, int], ...]
    netlist: Netlist
    golden: Callable[..., int]
    output_width: int
    _compiled: Optional[CompiledNetlist] = field(default=None, repr=False)
    exact: Optional[Callable[..., int]] = None
    params: Dict[str, Any] = field(default_factory=dict)

    @property
    def input_bits(self) -> int:
        """Total input bit count ``m`` (the Hd range is ``0..m``)."""
        return sum(w for _, w in self.operand_specs)

    @property
    def operand_width(self) -> int:
        """Width of the first operand (the paper's table-1 width column)."""
        return self.operand_specs[0][1]

    @property
    def n_operands(self) -> int:
        return len(self.operand_specs)

    @property
    def compiled(self) -> CompiledNetlist:
        """Lazily compiled simulation form (cached)."""
        if self._compiled is None:
            self._compiled = CompiledNetlist(self.netlist)
        return self._compiled

    def pack_inputs(self, *operand_words: np.ndarray) -> np.ndarray:
        """Pack per-operand word arrays into the module input bit matrix.

        Args:
            operand_words: One integer array per operand (unsigned bit
                patterns, i.e. already encoded; use
                :mod:`repro.signals.encoding` for two's complement).

        Returns:
            ``[n_patterns, input_bits]`` boolean matrix, operand ``a`` bits
            first (LSB-first), matching the netlist input order.
        """
        if len(operand_words) != self.n_operands:
            raise ValueError(
                f"{self.kind} has {self.n_operands} operands, "
                f"got {len(operand_words)} word arrays"
            )
        columns = []
        for (name, width), words in zip(self.operand_specs, operand_words):
            words = np.asarray(words, dtype=np.int64)
            if np.any(words < 0) or np.any(words >= (1 << width)):
                raise ValueError(
                    f"operand {name!r} words out of range for {width} bits"
                )
            bits = (words[:, None] >> np.arange(width)) & 1
            columns.append(bits.astype(bool))
        return np.concatenate(columns, axis=1)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ModuleKind:
    """Registry entry: constructor plus regression metadata.

    Attributes:
        name: Registry key (the family name for parameterized variants).
        build: ``(width) -> DatapathModule`` constructor; variant
            families take the validated params as keyword arguments
            (``(width, **params) -> DatapathModule``).
        complexity_features: Maps the operand width to the complexity
            parameter vector ``M`` of Eq. 9 (e.g. ``[m, 1]`` for the ripple
            adder, ``[m^2, m, 1]`` for the CSA multiplier).
        feature_names: Human-readable names of the features.
        params: Parameter schema (empty for plain kinds).
        parent: Exact parent kind of a variant family (``None`` for
            plain kinds).
        degenerate: ``(params, width) -> bool`` — True when the
            parameters reduce the variant to the exact parent; such
            specs collapse to ``parent`` during resolution.
        error_bound: ``(params, width) -> float`` analytic bound on the
            per-transition ``|exact - approx|`` error (0 for exact
            rewrites).
    """

    name: str
    build: Callable[..., "DatapathModule"]
    complexity_features: Callable[[int], np.ndarray]
    feature_names: Tuple[str, ...]
    params: Tuple[ParamSpec, ...] = ()
    parent: Optional[str] = None
    degenerate: Optional[Callable[[Dict[str, Any], int], bool]] = None
    error_bound: Optional[Callable[[Dict[str, Any], int], float]] = None


def _linear_features(width: int) -> np.ndarray:
    return np.array([width, 1.0])


def _quadratic_features(width: int) -> np.ndarray:
    return np.array([width * width, width, 1.0])


def _make_two_operand(kind, build_netlist, golden_factory):
    def build(width: int) -> DatapathModule:
        netlist = build_netlist(width)
        return DatapathModule(
            kind=kind,
            operand_specs=(("a", width), ("b", width)),
            netlist=netlist,
            golden=golden_factory(width),
            output_width=len(netlist.outputs),
        )

    return build


def _build_ripple(width: int) -> DatapathModule:
    netlist = _ripple_adder(width)
    return DatapathModule(
        kind="ripple_adder",
        operand_specs=(("a", width), ("b", width)),
        netlist=netlist,
        golden=_golden_adder(width),
        output_width=width + 1,
    )


def _build_cla(width: int) -> DatapathModule:
    netlist = _cla_adder(width)
    return DatapathModule(
        kind="cla_adder",
        operand_specs=(("a", width), ("b", width)),
        netlist=netlist,
        golden=_golden_adder(width),
        output_width=width + 1,
    )


def _build_carry_select(width: int) -> DatapathModule:
    netlist = _carry_select_adder(width)
    return DatapathModule(
        kind="carry_select_adder",
        operand_specs=(("a", width), ("b", width)),
        netlist=netlist,
        golden=_golden_adder(width),
        output_width=width + 1,
    )


def _build_kogge_stone(width: int) -> DatapathModule:
    netlist = _kogge_stone_adder(width)
    return DatapathModule(
        kind="kogge_stone_adder",
        operand_specs=(("a", width), ("b", width)),
        netlist=netlist,
        golden=_golden_adder(width),
        output_width=width + 1,
    )


def _build_subtractor(width: int) -> DatapathModule:
    netlist = _ripple_subtractor(width)
    return DatapathModule(
        kind="subtractor",
        operand_specs=(("a", width), ("b", width)),
        netlist=netlist,
        golden=_golden_subtractor(width),
        output_width=width + 1,
    )


def _build_incrementer(width: int) -> DatapathModule:
    netlist = _incrementer(width)
    return DatapathModule(
        kind="incrementer",
        operand_specs=(("a", width),),
        netlist=netlist,
        golden=_golden_incrementer(width),
        output_width=width + 1,
    )


def _build_absval(width: int) -> DatapathModule:
    netlist = _absval_fn(width)
    return DatapathModule(
        kind="absval",
        operand_specs=(("a", width),),
        netlist=netlist,
        golden=_golden_absval(width),
        output_width=width,
    )


def _build_csa_multiplier(width: int) -> DatapathModule:
    netlist = _csa_multiplier_fn(width, width)
    return DatapathModule(
        kind="csa_multiplier",
        operand_specs=(("a", width), ("b", width)),
        netlist=netlist,
        golden=_golden_multiplier(width, width),
        output_width=2 * width,
    )


def _build_booth_wallace(width: int) -> DatapathModule:
    netlist = _booth_wallace_fn(width, width)
    return DatapathModule(
        kind="booth_wallace_multiplier",
        operand_specs=(("a", width), ("b", width)),
        netlist=netlist,
        golden=_golden_multiplier(width, width),
        output_width=2 * width,
    )


def _build_dadda(width: int) -> DatapathModule:
    netlist = _dadda_fn(width, width)
    return DatapathModule(
        kind="dadda_multiplier",
        operand_specs=(("a", width), ("b", width)),
        netlist=netlist,
        golden=_golden_multiplier(width, width),
        output_width=2 * width,
    )


def _build_comparator(width: int) -> DatapathModule:
    netlist = _comparator_fn(width)
    return DatapathModule(
        kind="comparator",
        operand_specs=(("a", width), ("b", width)),
        netlist=netlist,
        golden=_golden_comparator(width),
        output_width=2,
    )


def _build_alu(width: int) -> DatapathModule:
    netlist = _alu_fn(width)
    return DatapathModule(
        kind="alu",
        operand_specs=(("a", width), ("b", width), ("op", 2)),
        netlist=netlist,
        golden=_golden_alu(width),
        output_width=width + 1,
    )


def _build_barrel_shifter(width: int) -> DatapathModule:
    netlist = _barrel_shifter_fn(width)
    n_sh = max(1, math.ceil(math.log2(width)))
    return DatapathModule(
        kind="barrel_shifter",
        operand_specs=(("a", width), ("sh", n_sh)),
        netlist=netlist,
        golden=_golden_barrel_shifter(width),
        output_width=width,
    )


def _build_mac(width: int) -> DatapathModule:
    netlist = _mac_fn(width)
    return DatapathModule(
        kind="mac",
        operand_specs=(("a", width), ("b", width), ("c", 2 * width)),
        netlist=netlist,
        golden=_golden_mac(width),
        output_width=2 * width,
    )


def _build_min_max(width: int) -> DatapathModule:
    netlist = _min_max_fn(width)
    return DatapathModule(
        kind="min_max",
        operand_specs=(("a", width), ("b", width)),
        netlist=netlist,
        golden=_golden_min_max(width),
        output_width=2 * width,
    )


def _build_popcount(width: int) -> DatapathModule:
    netlist = _popcount_fn(width)
    return DatapathModule(
        kind="popcount",
        operand_specs=(("a", width),),
        netlist=netlist,
        golden=_golden_popcount(width),
        output_width=len(netlist.outputs),
    )


def _build_parity(width: int) -> DatapathModule:
    netlist = _parity_fn(width)
    return DatapathModule(
        kind="parity",
        operand_specs=(("a", width),),
        netlist=netlist,
        golden=_golden_parity(width),
        output_width=1,
    )


def _build_lzc(width: int) -> DatapathModule:
    netlist = _lzc_fn(width)
    return DatapathModule(
        kind="leading_zero_counter",
        operand_specs=(("a", width),),
        netlist=netlist,
        golden=_golden_lzc(width),
        output_width=len(netlist.outputs),
    )


def _build_register_bank(width: int) -> DatapathModule:
    netlist = _register_bank_fn(width)
    return DatapathModule(
        kind="register_bank",
        operand_specs=(("d", width),),
        netlist=netlist,
        golden=_golden_register_bank(width),
        output_width=width,
    )


def _build_mux_word(width: int) -> DatapathModule:
    netlist = _mux_word_fn(width, 2)
    return DatapathModule(
        kind="mux_word",
        operand_specs=(("w0", width), ("w1", width), ("sel", 1)),
        netlist=netlist,
        golden=_golden_mux_word(width, 2),
        output_width=width,
    )


# ----------------------------------------------------------------------
# Parameterized variant families (see docs/MODULES.md)
# ----------------------------------------------------------------------
def _variant_kind(family: str, params: Dict[str, Any]) -> str:
    from .spec import ModuleSpec

    return ModuleSpec(family, tuple(sorted(params.items()))).canonical


def _build_trunc_adder(width: int, k: int) -> DatapathModule:
    netlist = _trunc_adder(width, k)
    return DatapathModule(
        kind=_variant_kind("trunc_adder", {"k": k}),
        operand_specs=(("a", width), ("b", width)),
        netlist=netlist,
        golden=_golden_trunc_adder(width, k),
        output_width=width + 1,
        exact=_golden_adder(width),
        params={"k": k},
    )


def _build_lor_adder(width: int, k: int) -> DatapathModule:
    netlist = _lor_adder(width, k)
    return DatapathModule(
        kind=_variant_kind("lor_adder", {"k": k}),
        operand_specs=(("a", width), ("b", width)),
        netlist=netlist,
        golden=_golden_lor_adder(width, k),
        output_width=width + 1,
        exact=_golden_adder(width),
        params={"k": k},
    )


def _build_seg_adder(width: int, s: int) -> DatapathModule:
    netlist = _seg_adder(width, s)
    return DatapathModule(
        kind=_variant_kind("seg_adder", {"s": s}),
        operand_specs=(("a", width), ("b", width)),
        netlist=netlist,
        golden=_golden_seg_adder(width, s),
        output_width=width + 1,
        exact=_golden_adder(width),
        params={"s": s},
    )


def _build_mac_reordered(width: int, order: str) -> DatapathModule:
    netlist = _mac_reordered_fn(width, order)
    return DatapathModule(
        kind=_variant_kind("mac_reordered", {"order": order}),
        operand_specs=(("a", width), ("b", width), ("c", 2 * width)),
        netlist=netlist,
        golden=_golden_mac(width),
        output_width=2 * width,
        params={"order": order},
    )


def _build_csa_reordered(width: int, order: str) -> DatapathModule:
    netlist = _csa_reordered_fn(width, order)
    return DatapathModule(
        kind=_variant_kind("csa_reordered_multiplier", {"order": order}),
        operand_specs=(("a", width), ("b", width)),
        netlist=netlist,
        golden=_golden_multiplier(width, width),
        output_width=2 * width,
        params={"order": order},
    )


_CUT_PARAM = ParamSpec(
    name="k", type="int", default=1, minimum=0, width_cap="width-1",
    doc="number of approximated low-order bits",
)

_VARIANT_KINDS: Tuple[ModuleKind, ...] = (
    ModuleKind(
        "trunc_adder", _build_trunc_adder, _linear_features, ("m", "1"),
        params=(_CUT_PARAM,),
        parent="ripple_adder",
        degenerate=lambda params, width: params["k"] == 0,
        error_bound=lambda params, width: _trunc_bound(width, params["k"]),
    ),
    ModuleKind(
        "lor_adder", _build_lor_adder, _linear_features, ("m", "1"),
        params=(_CUT_PARAM,),
        parent="ripple_adder",
        degenerate=lambda params, width: params["k"] == 0,
        error_bound=lambda params, width: _lor_bound(width, params["k"]),
    ),
    ModuleKind(
        "seg_adder", _build_seg_adder, _linear_features, ("m", "1"),
        params=(ParamSpec(
            name="s", type="int", default=2, minimum=1,
            doc="carry-chain segment length (s >= width is exact)",
        ),),
        parent="ripple_adder",
        degenerate=lambda params, width: params["s"] >= width,
        error_bound=lambda params, width: _seg_bound(width, params["s"]),
    ),
    ModuleKind(
        "mac_reordered", _build_mac_reordered, _quadratic_features,
        ("m^2", "m", "1"),
        params=(ParamSpec(
            name="order", type="choice", default="ba",
            choices=("ab", "ba"),
            doc="operand roles in the partial-product array",
        ),),
        parent="mac",
        degenerate=lambda params, width: params["order"] == "ab",
        error_bound=lambda params, width: 0.0,
    ),
    ModuleKind(
        "csa_reordered_multiplier", _build_csa_reordered,
        _quadratic_features, ("m^2", "m", "1"),
        params=(ParamSpec(
            name="order", type="choice", default="msb",
            choices=("lsb", "msb"),
            doc="partial-product row accumulation order",
        ),),
        parent="csa_multiplier",
        degenerate=lambda params, width: params["order"] == "lsb",
        error_bound=lambda params, width: 0.0,
    ),
)


MODULE_KINDS: Dict[str, ModuleKind] = {
    kind.name: kind
    for kind in (
        ModuleKind("ripple_adder", _build_ripple, _linear_features, ("m", "1")),
        ModuleKind("cla_adder", _build_cla, _linear_features, ("m", "1")),
        ModuleKind(
            "carry_select_adder", _build_carry_select, _linear_features, ("m", "1")
        ),
        ModuleKind(
            "kogge_stone_adder", _build_kogge_stone, _linear_features,
            ("m", "1"),
        ),
        ModuleKind("subtractor", _build_subtractor, _linear_features, ("m", "1")),
        ModuleKind("incrementer", _build_incrementer, _linear_features, ("m", "1")),
        ModuleKind("absval", _build_absval, _linear_features, ("m", "1")),
        ModuleKind(
            "csa_multiplier",
            _build_csa_multiplier,
            _quadratic_features,
            ("m^2", "m", "1"),
        ),
        ModuleKind(
            "booth_wallace_multiplier",
            _build_booth_wallace,
            _quadratic_features,
            ("m^2", "m", "1"),
        ),
        ModuleKind(
            "dadda_multiplier",
            _build_dadda,
            _quadratic_features,
            ("m^2", "m", "1"),
        ),
        ModuleKind("comparator", _build_comparator, _linear_features, ("m", "1")),
        ModuleKind("alu", _build_alu, _linear_features, ("m", "1")),
        ModuleKind(
            "barrel_shifter", _build_barrel_shifter, _linear_features, ("m", "1")
        ),
        ModuleKind("mux_word", _build_mux_word, _linear_features, ("m", "1")),
        ModuleKind("mac", _build_mac, _quadratic_features, ("m^2", "m", "1")),
        ModuleKind("min_max", _build_min_max, _linear_features, ("m", "1")),
        ModuleKind("popcount", _build_popcount, _linear_features, ("m", "1")),
        ModuleKind("parity", _build_parity, _linear_features, ("m", "1")),
        ModuleKind(
            "leading_zero_counter", _build_lzc, _linear_features, ("m", "1")
        ),
        ModuleKind(
            "register_bank", _build_register_bank, _linear_features, ("m", "1")
        ),
        *_VARIANT_KINDS,
    )
}

#: The five module types evaluated in the paper's Table 1.
PAPER_MODULE_KINDS: Tuple[str, ...] = (
    "ripple_adder",
    "cla_adder",
    "absval",
    "csa_multiplier",
    "booth_wallace_multiplier",
)


def module_kinds() -> List[str]:
    """All registered module kind names."""
    return sorted(MODULE_KINDS)


def make_module(
    kind: str,
    width: Optional[int] = None,
    params: Optional[Dict[str, Any]] = None,
) -> DatapathModule:
    """Build a datapath module by registry name (or spec) and width.

    ``kind`` accepts a bare registry name, a canonical spec string
    (``"trunc_adder[k=4]"`` or ``"trunc_adder[k=4]/16"``) or a
    :class:`~repro.modules.spec.ModuleSpec`; ``params`` merges extra
    variant parameters in.  Unknown kinds raise :class:`ValueError`
    naming the nearest matches; degenerate variant parameters build the
    exact parent kind.
    """
    resolved = resolve_spec(kind, width=width, params=params)
    if resolved.width is None:
        raise TypeError(f"make_module({kind!r}): width is required")
    if resolved.params:
        return resolved.entry.build(resolved.width, **resolved.params)
    return resolved.entry.build(resolved.width)


def registry_entry(kind: str) -> ModuleKind:
    """Registry entry for a bare kind or canonical spec string."""
    return resolve_spec(kind).entry


def complexity_features(kind: str, width: int) -> np.ndarray:
    """Complexity parameter vector ``M`` (Eq. 9) for a kind at a width."""
    return registry_entry(kind).complexity_features(width)


def make_rect_multiplier(kind: str, width_a: int, width_b: int) -> DatapathModule:
    """Rectangular (``m1 x m0``) multiplier instance (Section 5, Eq. 8).

    Args:
        kind: ``"csa_multiplier"`` or ``"booth_wallace_multiplier"``.
        width_a: Multiplicand width ``m1``.
        width_b: Multiplier width ``m0``.
    """
    builders = {
        "csa_multiplier": _csa_multiplier_fn,
        "booth_wallace_multiplier": _booth_wallace_fn,
        "dadda_multiplier": _dadda_fn,
    }
    try:
        build = builders[kind]
    except KeyError:
        raise KeyError(
            f"rectangular variants exist for {sorted(builders)}, not {kind!r}"
        ) from None
    netlist = build(width_a, width_b)
    return DatapathModule(
        kind=kind,
        operand_specs=(("a", width_a), ("b", width_b)),
        netlist=netlist,
        golden=_golden_multiplier(width_a, width_b),
        output_width=width_a + width_b,
    )


def rect_complexity_features(width_a: int, width_b: int) -> np.ndarray:
    """Complexity vector of Eq. 8: ``[m1 * m0, m1, 1]``."""
    return np.array([width_a * width_b, width_a, 1.0])
