"""Multiplier netlist generators.

Two signed (two's complement) multiplier topologies from the paper's module
set, plus a constant multiplier used by the statistics-propagation examples:

* :func:`csa_multiplier` — Baugh-Wooley partial products reduced row by row
  with carry-save adder rows and a final ripple vector-merge adder.  The
  array scales with ``m1 * m0`` and the merge adder with ``m1`` — exactly the
  complexity split the paper's Figure 3 and Eq. 7/8 rely on.
* :func:`booth_wallace_multiplier` — radix-4 Booth recoding of operand ``b``
  with a Wallace-tree (3:2 compressor) reduction and a ripple merge adder.
* :func:`constant_multiplier` — shift-and-add network for a fixed signed
  constant (CSD recoded).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..circuit.builder import NetlistBuilder
from ..circuit.netlist import CONST0, CONST1, Netlist


# ----------------------------------------------------------------------
# Baugh-Wooley carry-save array multiplier
# ----------------------------------------------------------------------
def _baugh_wooley_rows(
    b: NetlistBuilder,
    a_bits: Sequence[int],
    b_bits: Sequence[int],
) -> List[Dict[int, List[int]]]:
    """Partial-product rows for a signed multiply, as column->bits maps.

    Row ``j`` carries the Baugh-Wooley form of ``a * b_j * 2^j``: plain AND
    terms in the interior, complemented NAND terms along the sign row and
    sign column, the ``a_{m-1} b_{n-1}`` AND at the top corner, and the
    correction ones (at columns ``m-1``, ``n-1`` and ``m+n-1``) folded into
    the first row.
    """
    m, n = len(a_bits), len(b_bits)
    product_width = m + n
    rows: List[Dict[int, List[int]]] = []
    for j in range(n):
        row: Dict[int, List[int]] = {}
        for i in range(m):
            col = i + j
            if col >= product_width:
                continue
            last_a = i == m - 1
            last_b = j == n - 1
            if last_a ^ last_b:
                bit = b.gate("NAND2", a_bits[i], b_bits[j])
            else:
                bit = b.gate("AND2", a_bits[i], b_bits[j])
            row.setdefault(col, []).append(bit)
        rows.append(row)
    # Correction constants: +2^(m-1) + 2^(n-1) + 2^(m+n-1).
    corrections = [m - 1, n - 1, product_width - 1]
    for col in corrections:
        rows[0].setdefault(col, []).append(CONST1)
    return rows


def csa_multiplier(width_a: int, width_b: int | None = None) -> Netlist:
    """Signed carry-save array multiplier (Baugh-Wooley).

    Args:
        width_a: Width of the multiplicand ``a`` (``m1`` in the paper).
        width_b: Width of the multiplier ``b`` (``m0``); defaults to
            ``width_a``.

    Inputs ``a[0..m1-1], b[0..m0-1]``; output is the full ``m1+m0``-bit
    two's-complement product.
    """
    if width_b is None:
        width_b = width_a
    if width_a < 2 or width_b < 2:
        raise ValueError("signed multiplier widths must be >= 2")
    b = NetlistBuilder(f"csa_multiplier_{width_a}x{width_b}")
    a_bits = b.add_inputs(width_a, "a")
    b_bits = b.add_inputs(width_b, "b")
    product_width = width_a + width_b
    rows = _baugh_wooley_rows(b, a_bits, b_bits)

    # Array accumulation: (sum, carry) per column; each row is one FA row.
    sum_vec: List[int] = [CONST0] * product_width
    carry_vec: List[int] = [CONST0] * product_width
    for row in rows:
        # Split multi-bit columns into consecutive FA passes.
        passes: List[Dict[int, int]] = []
        for col, bits in row.items():
            for depth, bit in enumerate(bits):
                while len(passes) <= depth:
                    passes.append({})
                passes[depth][col] = bit
        for row_pass in passes:
            new_sum = list(sum_vec)
            new_carry: List[int] = [CONST0] * product_width
            for col in range(product_width):
                bit = row_pass.get(col, CONST0)
                s, cout = b.full_adder(sum_vec[col], carry_vec[col], bit)
                new_sum[col] = s
                if col + 1 < product_width:
                    new_carry[col + 1] = cout
            sum_vec, carry_vec = new_sum, new_carry

    # Vector-merge: final ripple adder over (sum, carry).
    outputs: List[int] = []
    carry = CONST0
    for col in range(product_width):
        s, carry = b.full_adder(sum_vec[col], carry_vec[col], carry)
        outputs.append(s)
    return b.build(outputs=outputs)


# ----------------------------------------------------------------------
# Radix-4 Booth / Wallace-tree multiplier
# ----------------------------------------------------------------------
def _booth_digits(
    b: NetlistBuilder, b_bits: Sequence[int]
) -> List[Tuple[int, int, int]]:
    """Radix-4 Booth recode: per digit, nets ``(one, two, neg)``.

    Digit ``j`` is formed from bits ``(b[2j+1], b[2j], b[2j-1])`` with
    ``b[-1] = 0``; for odd widths the top bit is sign-extended.
    """
    n = len(b_bits)
    padded = [CONST0] + list(b_bits)
    if n % 2 == 1:
        padded.append(b_bits[-1])  # sign extension for odd widths
    n_digits = (n + 1) // 2
    digits = []
    for j in range(n_digits):
        lo = padded[2 * j]
        mid = padded[2 * j + 1]
        hi = padded[2 * j + 2]
        one = b.gate("XOR2", mid, lo)
        two = b.gate("AND2", b.gate("XNOR2", mid, lo), b.gate("XOR2", hi, mid))
        neg = hi
        digits.append((one, two, neg))
    return digits


def _wallace_reduce(
    b: NetlistBuilder,
    columns: List[List[int]],
) -> Tuple[List[int], List[int]]:
    """Wallace-tree reduction of bit columns down to two rows.

    Repeatedly applies 3:2 compressors (full adders) and 2:2 compressors
    (half adders) per column until every column holds at most two bits.
    """
    width = len(columns)
    cols = [list(c) for c in columns]
    while any(len(c) > 2 for c in cols):
        next_cols: List[List[int]] = [[] for _ in range(width)]
        for col in range(width):
            bits = cols[col]
            idx = 0
            while len(bits) - idx >= 3:
                s, cout = b.full_adder(bits[idx], bits[idx + 1], bits[idx + 2])
                next_cols[col].append(s)
                if col + 1 < width:
                    next_cols[col + 1].append(cout)
                idx += 3
            remaining = len(bits) - idx
            if remaining == 2 and len(bits) > 2:
                s, cout = b.half_adder(bits[idx], bits[idx + 1])
                next_cols[col].append(s)
                if col + 1 < width:
                    next_cols[col + 1].append(cout)
            else:
                next_cols[col].extend(bits[idx:])
        cols = next_cols
    sum_vec = [c[0] if len(c) > 0 else CONST0 for c in cols]
    carry_vec = [c[1] if len(c) > 1 else CONST0 for c in cols]
    return sum_vec, carry_vec


def booth_wallace_multiplier(width_a: int, width_b: int | None = None) -> Netlist:
    """Signed radix-4 Booth-coded Wallace-tree multiplier.

    Inputs ``a[0..m1-1], b[0..m0-1]``; output is the ``m1+m0``-bit signed
    product.  Partial products are sign-extended to the full product width
    (net sharing, no extra gates per extension bit) and negative digits are
    completed with a ``+neg`` correction bit at the digit's column.
    """
    if width_b is None:
        width_b = width_a
    if width_a < 2 or width_b < 2:
        raise ValueError("signed multiplier widths must be >= 2")
    b = NetlistBuilder(f"booth_wallace_multiplier_{width_a}x{width_b}")
    a_bits = b.add_inputs(width_a, "a")
    b_bits = b.add_inputs(width_b, "b")
    product_width = width_a + width_b

    digits = _booth_digits(b, b_bits)
    # Sign-extended multiplicand (one extra bit so +/-2a fits).
    ae = list(a_bits) + [a_bits[-1]]

    columns: List[List[int]] = [[] for _ in range(product_width)]
    for j, (one, two, neg) in enumerate(digits):
        shift = 2 * j
        # Row bits: (ae_i & one) | (ae_{i-1} & two), XOR neg; the row is a
        # (width_a + 1)-bit two's-complement value, sign-extended upward.
        row_bits: List[int] = []
        for i in range(width_a + 1):
            low = ae[i] if i < len(ae) else ae[-1]
            below = ae[i - 1] if i - 1 >= 0 else CONST0
            picked = b.gate(
                "OR2", b.gate("AND2", low, one), b.gate("AND2", below, two)
            )
            row_bits.append(b.gate("XOR2", picked, neg))
        sign_bit = row_bits[-1]
        for col in range(shift, product_width):
            i = col - shift
            bit = row_bits[i] if i < len(row_bits) else sign_bit
            columns[col].append(bit)
        # Two's-complement completion of negated rows.
        columns[shift].append(neg)

    sum_vec, carry_vec = _wallace_reduce(b, columns)

    outputs: List[int] = []
    carry = CONST0
    for col in range(product_width):
        s, carry = b.full_adder(sum_vec[col], carry_vec[col], carry)
        outputs.append(s)
    return b.build(outputs=outputs)


# ----------------------------------------------------------------------
# Constant multiplier (CSD shift-add network)
# ----------------------------------------------------------------------
def _csd_digits(constant: int) -> List[Tuple[int, int]]:
    """Canonical signed-digit recoding: list of ``(shift, +1/-1)`` terms."""
    if constant == 0:
        return []
    digits: List[Tuple[int, int]] = []
    value = constant
    shift = 0
    while value != 0:
        if value & 1:
            # Choose +1 or -1 so the remaining value becomes even "longer".
            rem = value & 3
            digit = 1 if rem == 1 else -1
            digits.append((shift, digit))
            value -= digit
        value >>= 1
        shift += 1
    return digits


def constant_multiplier(width: int, constant: int, out_width: int | None = None) -> Netlist:
    """Multiply a signed ``width``-bit input by a fixed integer constant.

    Built as a CSD shift-add/subtract network of ripple adders over the
    sign-extended input.  Output width defaults to
    ``width + bit_length(|constant|) + 1``.
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    if out_width is None:
        out_width = width + max(abs(constant).bit_length(), 1) + 1
    b = NetlistBuilder(f"constant_multiplier_{width}_by_{constant}")
    a_bits = b.add_inputs(width, "a")

    def extended(bit_index: int) -> int:
        return a_bits[bit_index] if bit_index < width else a_bits[-1]

    digits = _csd_digits(constant)
    if not digits:
        return b.build(outputs=[CONST0] * out_width)

    # Accumulate terms with ripple adders/subtractors.  The builder folds
    # INV of constants, so shifted-in zeros cost nothing.
    acc: List[int] | None = None
    for shift, sign in digits:
        term = [CONST0] * shift + [extended(i) for i in range(out_width - shift)]
        term = term[:out_width]
        if acc is None:
            if sign > 0:
                acc = term
            else:
                # acc = -term = ~term + 1
                inv = [b.gate("INV", t) for t in term]
                carry = CONST1
                acc = []
                for t in inv:
                    s, carry = b.half_adder(t, carry)
                    acc.append(s)
            continue
        carry = CONST0 if sign > 0 else CONST1
        rhs = term if sign > 0 else [b.gate("INV", t) for t in term]
        new_acc: List[int] = []
        for x, y in zip(acc, rhs):
            s, carry = b.full_adder(x, y, carry)
            new_acc.append(s)
        acc = new_acc
    assert acc is not None
    return b.build(outputs=acc)


# ----------------------------------------------------------------------
# Golden integer semantics
# ----------------------------------------------------------------------
def _to_signed(u: int, width: int) -> int:
    return u - (1 << width) if u >= (1 << (width - 1)) else u


def golden_multiplier(width_a: int, width_b: int):
    """Golden function for signed multipliers: bit-pattern in, pattern out."""

    def fn(ua: int, ub: int) -> int:
        xa = _to_signed(ua, width_a)
        xb = _to_signed(ub, width_b)
        return (xa * xb) & ((1 << (width_a + width_b)) - 1)

    return fn


def golden_constant_multiplier(width: int, constant: int, out_width: int):
    """Golden integer reference for the matching module kind."""
    def fn(ua: int) -> int:
        xa = _to_signed(ua, width)
        return (xa * constant) & ((1 << out_width) - 1)

    return fn


# ----------------------------------------------------------------------
# Dadda multiplier
# ----------------------------------------------------------------------
def _dadda_heights(max_height: int) -> List[int]:
    """Dadda stage targets: descending members of 2, 3, 4, 6, 9, 13, ...
    strictly below ``max_height``."""
    sequence = [2]
    while sequence[-1] < max_height:
        sequence.append((sequence[-1] * 3) // 2)
    return [d for d in reversed(sequence) if d < max_height]


def dadda_multiplier(width_a: int, width_b: int | None = None) -> Netlist:
    """Signed Dadda-tree multiplier (Baugh-Wooley partial products).

    Dadda reduction compresses each column only as far as the stage target
    requires, using the minimum number of counters — fewer cells than
    Wallace for the same log depth, the third classic multiplier topology
    after the array (csa) and Wallace tree.
    """
    if width_b is None:
        width_b = width_a
    if width_a < 2 or width_b < 2:
        raise ValueError("signed multiplier widths must be >= 2")
    b = NetlistBuilder(f"dadda_multiplier_{width_a}x{width_b}")
    a_bits = b.add_inputs(width_a, "a")
    b_bits = b.add_inputs(width_b, "b")
    product_width = width_a + width_b
    rows = _baugh_wooley_rows(b, a_bits, b_bits)
    columns: List[List[int]] = [[] for _ in range(product_width)]
    for row in rows:
        for col, bits in row.items():
            columns[col].extend(bits)

    max_height = max(len(c) for c in columns)
    for target in _dadda_heights(max_height):
        # LSB-to-MSB sweep: carries emitted into column c+1 are included in
        # that column's height for this very stage (the Dadda discipline of
        # compressing *just enough* to reach the target).
        pending: List[List[int]] = [[] for _ in range(product_width + 1)]
        next_columns: List[List[int]] = [[] for _ in range(product_width)]
        for col in range(product_width):
            bits = columns[col] + pending[col]
            while len(bits) > target:
                if len(bits) >= target + 2:
                    x, y, z = bits.pop(), bits.pop(), bits.pop()
                    s, cout = b.full_adder(x, y, z)
                else:
                    x, y = bits.pop(), bits.pop()
                    s, cout = b.half_adder(x, y)
                bits.append(s)
                pending[col + 1].append(cout)  # dropped past the top column
            next_columns[col] = bits
        columns = next_columns

    sum_vec = [c[0] if len(c) > 0 else CONST0 for c in columns]
    carry_vec = [c[1] if len(c) > 1 else CONST0 for c in columns]
    outputs: List[int] = []
    carry = CONST0
    for col in range(product_width):
        s, carry = b.full_adder(sum_vec[col], carry_vec[col], carry)
        outputs.append(s)
    return b.build(outputs=outputs)
