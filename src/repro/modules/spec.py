"""ModuleSpec: the parameterized module addressing layer.

Every layer of the system names a model by a *kind string*.  Plain
library components keep their bare names (``"ripple_adder"``); the
parameterized variant families introduced with the approximate/rewritten
datapaths are addressed by a canonical spec string::

    trunc_adder[k=4]          # kind + params
    trunc_adder[k=4]/16       # kind + params + operand width

The canonical form is what flows through registry single-flight keys,
cache keys, characterization jobs, warmup manifests and streaming-session
snapshots — because it is *just a string*, every existing ``(kind,
width)`` call site keeps working unchanged and every existing cache key
stays byte-identical (bare kinds canonicalize to themselves).

Canonicalization rules (:func:`canonical_kind`):

* parameters are sorted by name and spelled out in full, defaults
  included — ``"trunc_adder"`` and ``"trunc_adder[k=1]"`` are the same
  model and map to the same key;
* *degenerate* parameter values collapse to the exact parent kind —
  ``"trunc_adder[k=0]/16"`` IS ``"ripple_adder/16"`` (same registry
  entry, same cache entry, exactly equal charge).

See docs/MODULES.md for the grammar and the variant parameter reference.
"""

from __future__ import annotations

import difflib
import re
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

__all__ = [
    "ModuleSpec",
    "ParamSpec",
    "ResolvedSpec",
    "UnknownModuleError",
    "canonical_kind",
    "parse_spec",
    "resolve_spec",
]


class UnknownModuleError(ValueError):
    """An addressing error: unknown family, bad syntax or bad params.

    ``family_unknown`` distinguishes "no such kind at all" (the legacy
    404 path in serve) from "kind exists but the parameters are wrong"
    (a 400).
    """

    def __init__(self, message: str, kind: str = "",
                 family_unknown: bool = False):
        super().__init__(message)
        self.kind = kind
        self.family_unknown = family_unknown


@dataclass(frozen=True)
class ParamSpec:
    """Schema of one variant parameter.

    Attributes:
        name: Parameter name (the ``k`` in ``trunc_adder[k=4]``).
        type: ``"int"`` or ``"choice"``.
        default: Value used when the parameter is omitted.
        minimum: Smallest legal value (int params).
        maximum: Largest legal value (int params); ``None`` with
            ``width_cap`` set means the cap depends on the operand width.
        width_cap: Symbolic width-relative cap: ``"width"`` allows values
            up to the operand width, ``"width-1"`` up to ``width - 1``.
        choices: Legal values for choice params.
        doc: One-line description for ``list-modules --json``.
    """

    name: str
    type: str = "int"
    default: Any = 0
    minimum: Optional[int] = None
    maximum: Optional[int] = None
    width_cap: Optional[str] = None
    choices: Tuple[str, ...] = ()
    doc: str = ""

    def _cap(self, width: Optional[int]) -> Optional[int]:
        if self.maximum is not None:
            return self.maximum
        if self.width_cap is None or width is None:
            return None
        if self.width_cap == "width":
            return int(width)
        if self.width_cap == "width-1":
            return int(width) - 1
        raise ValueError(f"bad width_cap {self.width_cap!r}")

    def validate(self, value: Any, width: Optional[int] = None) -> Any:
        """Coerce and range-check one value; raises ValueError."""
        if self.type == "choice":
            value = str(value)
            if value not in self.choices:
                raise ValueError(
                    f"param {self.name}={value!r} is not one of "
                    f"{sorted(self.choices)}"
                )
            return value
        if isinstance(value, bool) or not isinstance(value, (int, str)):
            raise ValueError(
                f"param {self.name} must be an integer, got {value!r}"
            )
        try:
            value = int(value)
        except ValueError:
            raise ValueError(
                f"param {self.name} must be an integer, got {value!r}"
            ) from None
        if self.minimum is not None and value < self.minimum:
            raise ValueError(
                f"param {self.name}={value} is below the minimum "
                f"{self.minimum}"
            )
        cap = self._cap(width)
        if cap is not None and value > cap:
            bound = self.width_cap or str(self.maximum)
            raise ValueError(
                f"param {self.name}={value} exceeds the maximum "
                f"({bound} = {cap})"
            )
        return value

    def to_schema(self) -> Dict[str, Any]:
        """JSON-facing schema record (``list-modules --json``)."""
        record: Dict[str, Any] = {
            "name": self.name,
            "type": self.type,
            "default": self.default,
        }
        if self.type == "choice":
            record["choices"] = list(self.choices)
        else:
            record["minimum"] = self.minimum
            record["maximum"] = (
                self.width_cap if self.maximum is None else self.maximum
            )
        if self.doc:
            record["doc"] = self.doc
        return record


#: Spec grammar: ``kind`` · ``kind[p=v,...]`` · either with ``/width``.
_SPEC_RE = re.compile(
    r"^(?P<kind>[A-Za-z_][A-Za-z0-9_]*)"
    r"(?:\[(?P<params>[^\]]*)\])?"
    r"(?:/(?P<width>\d+))?$"
)
_PARAM_RE = re.compile(
    r"^(?P<name>[A-Za-z_][A-Za-z0-9_]*)\s*=\s*"
    r"(?P<value>-?\d+|[A-Za-z_][A-Za-z0-9_]*)$"
)


@dataclass(frozen=True)
class ModuleSpec:
    """A parsed (but not yet validated) module address.

    ``params`` is a name-sorted tuple of ``(name, value)`` pairs so specs
    are hashable and parameter order never matters.
    """

    kind: str
    params: Tuple[Tuple[str, Any], ...] = ()
    width: Optional[int] = None

    def __post_init__(self):
        object.__setattr__(
            self, "params", tuple(sorted(self.params))
        )

    @property
    def canonical(self) -> str:
        """Canonical kind string (no width component)."""
        if not self.params:
            return self.kind
        inner = ",".join(f"{n}={v}" for n, v in self.params)
        return f"{self.kind}[{inner}]"

    @property
    def label(self) -> str:
        """Canonical string including the width, when known."""
        if self.width is None:
            return self.canonical
        return f"{self.canonical}/{self.width}"

    @property
    def params_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "params": self.params_dict,
            "width": self.width,
        }

    @classmethod
    def parse(cls, text: str) -> "ModuleSpec":
        return parse_spec(text)

    @classmethod
    def coerce(
        cls,
        value: Any,
        width: Optional[int] = None,
        params: Optional[Dict[str, Any]] = None,
    ) -> "ModuleSpec":
        """Normalize any accepted spelling into one ModuleSpec.

        Accepts a ModuleSpec, a bare kind, or a spec string; ``width``
        and ``params`` arguments merge in (and must not conflict with
        components already present in the string).
        """
        if isinstance(value, ModuleSpec):
            spec = value
        elif isinstance(value, str):
            spec = parse_spec(value)
        else:
            raise UnknownModuleError(
                f"module kind must be a string or ModuleSpec, "
                f"got {type(value).__name__}"
            )
        if params:
            overlap = set(dict(spec.params)) & set(params)
            if overlap:
                raise UnknownModuleError(
                    f"params {sorted(overlap)} given both in the spec "
                    f"string {spec.canonical!r} and the params argument",
                    kind=spec.kind,
                )
            spec = ModuleSpec(
                spec.kind,
                spec.params + tuple(sorted(params.items())),
                spec.width,
            )
        if width is not None:
            width = int(width)
            if spec.width is not None and spec.width != width:
                raise UnknownModuleError(
                    f"conflicting widths: {spec.label!r} vs width={width}",
                    kind=spec.kind,
                )
            spec = ModuleSpec(spec.kind, spec.params, width)
        return spec


def parse_spec(text: str) -> ModuleSpec:
    """Parse ``kind[p=v,...]/width`` (every component optional but kind)."""
    if not isinstance(text, str):
        raise UnknownModuleError(
            f"module kind must be a string, got {type(text).__name__}"
        )
    match = _SPEC_RE.match(text.strip())
    if not match:
        raise UnknownModuleError(
            f"bad module spec {text!r} (grammar: kind[p=v,...]/width)",
            kind=text,
        )
    params: Dict[str, Any] = {}
    raw = match.group("params")
    if raw is not None:
        for item in raw.split(","):
            item = item.strip()
            if not item:
                raise UnknownModuleError(
                    f"bad module spec {text!r}: empty parameter",
                    kind=match.group("kind"),
                )
            pmatch = _PARAM_RE.match(item)
            if not pmatch:
                raise UnknownModuleError(
                    f"bad module spec {text!r}: parameter {item!r} is not "
                    f"name=value",
                    kind=match.group("kind"),
                )
            name, value = pmatch.group("name"), pmatch.group("value")
            if name in params:
                raise UnknownModuleError(
                    f"bad module spec {text!r}: duplicate param {name!r}",
                    kind=match.group("kind"),
                )
            params[name] = (
                int(value) if re.match(r"^-?\d+$", value) else value
            )
    width = match.group("width")
    return ModuleSpec(
        kind=match.group("kind"),
        params=tuple(sorted(params.items())),
        width=int(width) if width is not None else None,
    )


@dataclass(frozen=True)
class ResolvedSpec:
    """A validated spec bound to its registry entry.

    ``kind`` is the canonical kind string *after* degenerate collapse,
    ``entry`` the (possibly parent) registry entry, ``params`` the full
    defaults-filled parameter dict for that entry (empty for plain
    kinds and collapsed variants).
    """

    kind: str
    entry: Any
    params: Dict[str, Any] = field(default_factory=dict)
    width: Optional[int] = None

    @property
    def label(self) -> str:
        if self.width is None:
            return self.kind
        return f"{self.kind}/{self.width}"


def family_entry(kind: str):
    """Registry entry for a family name; raises with near-miss hints."""
    from .library import MODULE_KINDS, module_kinds

    entry = MODULE_KINDS.get(kind)
    if entry is not None:
        return entry
    hints = difflib.get_close_matches(kind, module_kinds(), n=3)
    suggestion = f"; did you mean {', '.join(hints)}?" if hints else ""
    raise UnknownModuleError(
        f"unknown module kind {kind!r}{suggestion} "
        f"(known: {', '.join(module_kinds())})",
        kind=kind,
        family_unknown=True,
    )


def resolve_spec(
    spec: Any,
    width: Optional[int] = None,
    params: Optional[Dict[str, Any]] = None,
) -> ResolvedSpec:
    """Validate a spec against the registry and collapse degenerates.

    Raises :class:`UnknownModuleError` for unknown families, unknown or
    out-of-range parameters, or parameters given to a plain kind.  Range
    checks that depend on the operand width are skipped when no width is
    known yet (the registry and :func:`make_module` always have one).
    """
    spec = ModuleSpec.coerce(spec, width=width, params=params)
    entry = family_entry(spec.kind)
    schema = {p.name: p for p in entry.params}
    given = spec.params_dict
    unknown = sorted(set(given) - set(schema))
    if unknown:
        detail = (
            f"takes {sorted(schema)}" if schema else "takes no params"
        )
        raise UnknownModuleError(
            f"unknown param(s) {unknown} for {spec.kind!r} ({detail})",
            kind=spec.kind,
        )
    resolved: Dict[str, Any] = {}
    for name, pspec in schema.items():
        value = given.get(name, pspec.default)
        try:
            resolved[name] = pspec.validate(value, spec.width)
        except ValueError as exc:
            raise UnknownModuleError(
                f"{spec.kind!r}: {exc}", kind=spec.kind
            ) from None
    if (
        entry.parent is not None
        and entry.degenerate is not None
        and spec.width is not None
        and entry.degenerate(resolved, spec.width)
    ):
        # Degenerate parameters ARE the exact parent: same registry
        # entry, same cache key, identical charge by construction.
        return resolve_spec(entry.parent, width=spec.width)
    canonical = ModuleSpec(
        spec.kind, tuple(sorted(resolved.items())), spec.width
    )
    return ResolvedSpec(
        kind=canonical.canonical,
        entry=entry,
        params=resolved,
        width=spec.width,
    )


def canonical_kind(
    kind: Any,
    width: Optional[int] = None,
    params: Optional[Dict[str, Any]] = None,
) -> str:
    """Canonical kind string for any accepted spelling.

    Bare library kinds come back unchanged; variant specs come back
    defaults-filled and name-sorted, collapsed to the parent kind when
    the parameters are degenerate (which needs ``width``).
    """
    return resolve_spec(kind, width=width, params=params).kind
