"""Approximate adder families with analytic error models.

Three parameterized low-power adder structures from the approximate-
arithmetic literature (see PAPERS.md: *Optimization of DSP Applications
Using Parameterized Error Models for Low Power Approximate Adders*).
Each trades the exact lower-bit carry chain for gates — and therefore
switched capacitance — against a bounded arithmetic error:

* :func:`trunc_adder` — lower ``k`` input bits ignored, sum bits forced
  to 0.  Error ``(a mod 2^k) + (b mod 2^k)``: one-sided, max
  ``2^(k+1) - 2``.
* :func:`lor_adder` — lower ``k`` result bits are ``a_i OR b_i`` with a
  speculated carry ``a_{k-1} AND b_{k-1}`` into the exact upper part.
  Error ``(a_l AND b_l) - 2^k·msb(a_l AND b_l)``: two-sided, magnitude
  at most ``2^(k-1)``.
* :func:`seg_adder` — carry chain cut into ``s``-bit segments, each with
  a speculated zero carry-in.  Error is the weighted sum of the dropped
  boundary carries: one-sided, max ``Σ 2^(j·s)`` over internal
  boundaries.

Every family's *structural* golden (``golden_*``) computes exactly what
the netlist computes, so the differential fuzzer verifies variants like
any other kind; the exact reference for error measurement is the parent
ripple adder's golden.  At the degenerate parameter (``k=0`` /
``s >= width``) the generators emit the parent's gate structure
bit-identically — and the registry collapses such specs to the parent
kind outright.
"""

from __future__ import annotations

from typing import List

from ..circuit.builder import NetlistBuilder
from ..circuit.netlist import CONST0, Netlist

__all__ = [
    "golden_lor_adder",
    "golden_seg_adder",
    "golden_trunc_adder",
    "lor_adder",
    "lor_adder_error_bound",
    "seg_adder",
    "seg_adder_error_bound",
    "trunc_adder",
    "trunc_adder_error_bound",
]


def _check_cut(width: int, k: int) -> None:
    if width < 1:
        raise ValueError("width must be >= 1")
    if not 0 <= k < width:
        raise ValueError(f"cut k={k} must be in [0, width) = [0, {width})")


# ----------------------------------------------------------------------
# Truncation adder
# ----------------------------------------------------------------------
def trunc_adder(width: int, k: int) -> Netlist:
    """Truncated ripple adder: lower ``k`` bits dropped from the sum.

    Inputs ``a[w], b[w]``; outputs ``sum[w], cout`` with
    ``sum[0..k-1] = 0`` and the upper part an exact ripple chain with a
    zero carry-in at bit ``k``.  ``k = 0`` is the plain ripple adder.
    """
    _check_cut(width, k)
    b = NetlistBuilder(f"trunc_adder_k{k}_{width}")
    a_bits = b.add_inputs(width, "a")
    b_bits = b.add_inputs(width, "b")
    carry = CONST0
    sums: List[int] = [CONST0] * k
    for i in range(k, width):
        s, carry = b.full_adder(a_bits[i], b_bits[i], carry)
        sums.append(s)
    return b.build(outputs=sums + [carry])


def golden_trunc_adder(width: int, k: int):
    """Structural golden: what the truncated netlist actually computes."""
    mask = (1 << (width + 1)) - 1

    def fn(ua: int, ub: int) -> int:
        return (((ua >> k) + (ub >> k)) << k) & mask

    return fn


def trunc_adder_error_bound(width: int, k: int) -> int:
    """Max ``exact - approx`` (one-sided): both truncated tails maximal."""
    return 2 * ((1 << k) - 1)


# ----------------------------------------------------------------------
# Lower-OR adder
# ----------------------------------------------------------------------
def lor_adder(width: int, k: int) -> Netlist:
    """Lower-OR adder: approximate low part, speculative carry, exact top.

    The lower ``k`` sum bits are ``a_i OR b_i`` (one gate per bit instead
    of a full adder); the carry into the exact upper chain is speculated
    as ``a_{k-1} AND b_{k-1}``.  ``k = 0`` is the plain ripple adder.
    """
    _check_cut(width, k)
    b = NetlistBuilder(f"lor_adder_k{k}_{width}")
    a_bits = b.add_inputs(width, "a")
    b_bits = b.add_inputs(width, "b")
    sums: List[int] = []
    for i in range(k):
        sums.append(b.gate("OR2", a_bits[i], b_bits[i]))
    carry = (
        b.gate("AND2", a_bits[k - 1], b_bits[k - 1]) if k > 0 else CONST0
    )
    for i in range(k, width):
        s, carry = b.full_adder(a_bits[i], b_bits[i], carry)
        sums.append(s)
    return b.build(outputs=sums + [carry])


def golden_lor_adder(width: int, k: int):
    """Structural golden for the lower-OR adder netlist."""
    mask = (1 << (width + 1)) - 1
    low_mask = (1 << k) - 1

    def fn(ua: int, ub: int) -> int:
        low = (ua | ub) & low_mask
        cin = ((ua >> (k - 1)) & (ub >> (k - 1)) & 1) if k > 0 else 0
        high = (ua >> k) + (ub >> k) + cin
        return ((high << k) | low) & mask

    return fn


def lor_adder_error_bound(width: int, k: int) -> int:
    """Max ``|exact - approx|``: ``(a_l & b_l) - 2^k·msb`` magnitude."""
    return (1 << (k - 1)) if k > 0 else 0


# ----------------------------------------------------------------------
# Segmented (speculative-carry) adder
# ----------------------------------------------------------------------
def seg_adder(width: int, s: int) -> Netlist:
    """Segmented adder: independent ``s``-bit ripple segments.

    The carry crossing each internal segment boundary is speculated as
    zero (the boundary carry-out is simply dropped); the final segment's
    carry-out is the adder's carry output.  ``s >= width`` is the plain
    ripple adder.
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    if s < 1:
        raise ValueError(f"segment length s={s} must be >= 1")
    b = NetlistBuilder(f"seg_adder_s{s}_{width}")
    a_bits = b.add_inputs(width, "a")
    b_bits = b.add_inputs(width, "b")
    sums: List[int] = []
    carry = CONST0
    for i in range(width):
        if i > 0 and i % s == 0:
            carry = CONST0  # speculate: drop the boundary carry
        fs, carry = b.full_adder(a_bits[i], b_bits[i], carry)
        sums.append(fs)
    return b.build(outputs=sums + [carry])


def golden_seg_adder(width: int, s: int):
    """Structural golden for the segmented adder netlist."""
    mask = (1 << (width + 1)) - 1

    def fn(ua: int, ub: int) -> int:
        out = 0
        for start in range(0, width, s):
            length = min(s, width - start)
            seg_mask = (1 << length) - 1
            seg = ((ua >> start) & seg_mask) + ((ub >> start) & seg_mask)
            if start + length >= width:
                out |= seg << start  # last segment keeps its carry-out
            else:
                out |= (seg & seg_mask) << start
        return out & mask

    return fn


def seg_adder_error_bound(width: int, s: int) -> int:
    """Max one-sided error: every internal boundary carry dropped."""
    return sum(1 << p for p in range(s, width, s))
