"""Adder-family netlist generators.

All generators return raw :class:`~repro.circuit.netlist.Netlist` objects plus
a golden integer function; the :mod:`repro.modules.library` registry wraps
them into :class:`~repro.modules.library.DatapathModule` instances.

Port convention (shared by the whole package): operand ``a`` bits LSB-first,
then operand ``b`` bits LSB-first.  Output bits LSB-first, carry last.
"""

from __future__ import annotations

from typing import List, Tuple

from ..circuit.builder import NetlistBuilder
from ..circuit.netlist import CONST0, CONST1, Netlist


def ripple_adder(width: int) -> Netlist:
    """Ripple-carry adder: ``width`` full adders in a chain.

    Inputs: ``a[0..w-1], b[0..w-1]``; outputs: ``sum[0..w-1], cout``.
    Complexity is linear in the operand width (Eq. 6 of the paper).
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    b = NetlistBuilder(f"ripple_adder_{width}")
    a_bits = b.add_inputs(width, "a")
    b_bits = b.add_inputs(width, "b")
    carry = CONST0
    sums: List[int] = []
    for i in range(width):
        s, carry = b.full_adder(a_bits[i], b_bits[i], carry)
        sums.append(s)
    return b.build(outputs=sums + [carry])


def ripple_subtractor(width: int) -> Netlist:
    """Two's-complement subtractor ``a - b`` (invert b, carry-in 1).

    Outputs: ``diff[0..w-1], cout`` (cout = NOT borrow).
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    b = NetlistBuilder(f"ripple_subtractor_{width}")
    a_bits = b.add_inputs(width, "a")
    b_bits = b.add_inputs(width, "b")
    nb = b.invert_bus(b_bits)
    carry = CONST1
    sums: List[int] = []
    for i in range(width):
        s, carry = b.full_adder(a_bits[i], nb[i], carry)
        sums.append(s)
    return b.build(outputs=sums + [carry])


def _cla_block(
    b: NetlistBuilder, p: List[int], g: List[int], cin: int
) -> Tuple[List[int], int]:
    """Carry-lookahead over one block.

    Computes every internal carry directly from ``cin`` in two-ish gate
    levels using cumulative propagate products — the classic lookahead
    structure with O(k^2) gates for a k-bit block.

    Returns:
        (list of per-bit carries ``c[0..k-1]`` with ``c[0] = cin``, block
        carry-out).
    """
    k = len(p)
    carries = [cin]
    for j in range(1, k + 1):
        # c_j = g_{j-1} | p_{j-1} g_{j-2} | ... | (p_{j-1}..p_0) cin
        terms: List[int] = [g[j - 1]]
        prod = p[j - 1]
        for t in range(j - 2, -1, -1):
            terms.append(b.gate("AND2", prod, g[t]))
            prod = b.gate("AND2", prod, p[t])
        terms.append(b.gate("AND2", prod, cin))
        acc = terms[0]
        for term in terms[1:]:
            acc = b.gate("OR2", acc, term)
        carries.append(acc)
    return carries[:k], carries[k]


def cla_adder(width: int, block_size: int = 4) -> Netlist:
    """Carry-lookahead adder with ``block_size``-bit lookahead blocks.

    Carries inside a block come from the two-level lookahead network; block
    carry-outs ripple between blocks (block-level carry chain), which is the
    standard DesignWare-style CLA topology.  Complexity is linear in the
    width with a larger per-bit constant than the ripple adder.
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    if block_size < 1:
        raise ValueError("block_size must be >= 1")
    b = NetlistBuilder(f"cla_adder_{width}")
    a_bits = b.add_inputs(width, "a")
    b_bits = b.add_inputs(width, "b")
    p = [b.gate("XOR2", a_bits[i], b_bits[i]) for i in range(width)]
    g = [b.gate("AND2", a_bits[i], b_bits[i]) for i in range(width)]
    sums: List[int] = []
    cin = CONST0
    for start in range(0, width, block_size):
        stop = min(start + block_size, width)
        carries, cin = _cla_block(b, p[start:stop], g[start:stop], cin)
        for i, c in zip(range(start, stop), carries):
            sums.append(b.gate("XOR2", p[i], c))
    return b.build(outputs=sums + [cin])


def carry_select_adder(width: int, block_size: int = 4) -> Netlist:
    """Carry-select adder: duplicate ripple blocks, select by block carry.

    Included as an additional datapath component beyond the paper's five
    module types (the model claims applicability to "a wide variety" of
    components).
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    b = NetlistBuilder(f"carry_select_adder_{width}")
    a_bits = b.add_inputs(width, "a")
    b_bits = b.add_inputs(width, "b")

    def ripple_block(bits_a, bits_b, cin):
        carry = cin
        out = []
        for x, y in zip(bits_a, bits_b):
            s, carry = b.full_adder(x, y, carry)
            out.append(s)
        return out, carry

    sums: List[int] = []
    carry = CONST0
    first = True
    for start in range(0, width, block_size):
        stop = min(start + block_size, width)
        blk_a, blk_b = a_bits[start:stop], b_bits[start:stop]
        if first:
            out, carry = ripple_block(blk_a, blk_b, carry)
            sums.extend(out)
            first = False
            continue
        out0, c0 = ripple_block(blk_a, blk_b, CONST0)
        out1, c1 = ripple_block(blk_a, blk_b, CONST1)
        for s0, s1 in zip(out0, out1):
            sums.append(b.gate("MUX2", carry, s0, s1))
        carry = b.gate("MUX2", carry, c0, c1)
    return b.build(outputs=sums + [carry])


def incrementer(width: int) -> Netlist:
    """``a + 1``: half-adder chain.  Outputs ``sum[0..w-1], cout``."""
    if width < 1:
        raise ValueError("width must be >= 1")
    b = NetlistBuilder(f"incrementer_{width}")
    a_bits = b.add_inputs(width, "a")
    carry = CONST1
    sums: List[int] = []
    for i in range(width):
        s, carry = b.half_adder(a_bits[i], carry)
        sums.append(s)
    return b.build(outputs=sums + [carry])


# ----------------------------------------------------------------------
# Golden integer semantics (operands given as unsigned bit patterns)
# ----------------------------------------------------------------------
def golden_adder(width: int):
    """Golden function: ``(ua, ub) -> ua + ub`` over ``width+1`` output bits."""

    def fn(ua: int, ub: int) -> int:
        return (ua + ub) & ((1 << (width + 1)) - 1)

    return fn


def golden_subtractor(width: int):
    """Golden function for ``a - b`` with cout = NOT borrow."""

    def fn(ua: int, ub: int) -> int:
        mask = (1 << width) - 1
        return (ua + ((~ub) & mask) + 1) & ((1 << (width + 1)) - 1)

    return fn


def golden_incrementer(width: int):
    """Golden integer reference for the matching module kind."""
    def fn(ua: int) -> int:
        return (ua + 1) & ((1 << (width + 1)) - 1)

    return fn


def kogge_stone_adder(width: int) -> Netlist:
    """Kogge-Stone parallel-prefix adder.

    Log-depth carry network with O(w log w) (generate, propagate) cells —
    the opposite corner of the adder design space from the ripple chain,
    giving the Hd model a shallow, wide-glitch-profile client.
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    b = NetlistBuilder(f"kogge_stone_adder_{width}")
    a_bits = b.add_inputs(width, "a")
    b_bits = b.add_inputs(width, "b")
    p = [b.gate("XOR2", a_bits[i], b_bits[i]) for i in range(width)]
    g = [b.gate("AND2", a_bits[i], b_bits[i]) for i in range(width)]
    # Prefix network: (G, P) o (G', P') = (G | P & G', P & P').
    gen = list(g)
    prop = list(p)
    distance = 1
    while distance < width:
        new_gen = list(gen)
        new_prop = list(prop)
        for i in range(distance, width):
            new_gen[i] = b.gate(
                "OR2", gen[i], b.gate("AND2", prop[i], gen[i - distance])
            )
            new_prop[i] = b.gate("AND2", prop[i], prop[i - distance])
        gen, prop = new_gen, new_prop
        distance *= 2
    # gen[i] is the carry *out* of position i; sum uses carry-in.
    sums = [p[0]]
    for i in range(1, width):
        sums.append(b.gate("XOR2", p[i], gen[i - 1]))
    return b.build(outputs=sums + [gen[width - 1]])
