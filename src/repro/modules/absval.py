"""Absolute-value module (two's complement conditional negate)."""

from __future__ import annotations

from typing import List

from ..circuit.builder import NetlistBuilder
from ..circuit.netlist import Netlist


def absval(width: int) -> Netlist:
    """``|x|`` for a signed ``width``-bit input.

    Structure: XOR every bit with the sign, then conditionally increment
    (ripple half-adder chain seeded with the sign bit) — the canonical
    DesignWare-style conditional-negate.  Note ``abs(-2^(w-1))`` wraps to
    ``2^(w-1)`` (the usual two's-complement overflow).
    """
    if width < 2:
        raise ValueError("width must be >= 2 for a signed absval")
    b = NetlistBuilder(f"absval_{width}")
    a_bits = b.add_inputs(width, "a")
    sign = a_bits[-1]
    flipped = [b.gate("XOR2", bit, sign) for bit in a_bits]
    carry = sign
    outputs: List[int] = []
    for bit in flipped:
        s, carry = b.half_adder(bit, carry)
        outputs.append(s)
    return b.build(outputs=outputs)


def golden_absval(width: int):
    """Golden function: unsigned bit pattern in, ``|x| mod 2^w`` out."""

    def fn(ua: int) -> int:
        mask = (1 << width) - 1
        x = ua - (1 << width) if ua >= (1 << (width - 1)) else ua
        return (-x if x < 0 else x) & mask

    return fn
