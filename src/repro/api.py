"""The public facade: one documented entry point for the whole flow.

Callers previously stitched together four layers by hand —
``characterize_module`` for fitting, ``PowerEstimator`` for applying,
``ModelRegistry`` for materialization and ``ModelCache`` for
persistence.  :class:`Session` wraps them behind one object with the
normalized parameter spellings (``engine=``, ``jobs=``, ``enhanced=``)::

    import repro

    session = repro.Session(cache_dir="~/.cache/repro-hd", jobs=4)
    result = session.characterize("ripple_adder", 8)
    estimate = session.estimate("ripple_adder", 8, stream)
    analytic = session.estimate_analytic(
        "ripple_adder", 8,
        operand_stats=[{"mean": 0.0, "variance": 40.0, "rho": 0.3}] * 2,
    )

Everything the facade does is a thin, parity-tested delegation — the
same seeds, the same configuration plumbing — so results match the
layered calls exactly (``tests/test_api.py`` pins ≤ 1e-9).

Every ``kind`` argument also accepts a canonical variant spec string
(``"trunc_adder[k=4]"``) addressing the parameterized approximate /
rewritten datapath families — the registry canonicalizes specs, so
``session.estimate("trunc_adder[k=0]", 8, ...)`` is served by the very
same model as ``session.estimate("ripple_adder", 8, ...)``.  See
``docs/MODULES.md`` for the grammar and the parameter reference.

See ``docs/API.md`` for the full surface and the old→new migration
table.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Optional, Sequence, Union

import numpy as np

from ._compat import pop_renamed_kwarg
from .core.characterize import CharacterizationResult
from .core.estimator import EstimationResult, PowerEstimator
from .runtime.cache import ModelCache
from .runtime.service import CharacterizationJob, characterize_jobs
from .stats.wordstats import WordStats

__all__ = ["Session"]


class Session:
    """A configured characterization/estimation context.

    Args:
        cache_dir: Directory of the persistent model cache.  ``None``
            (default) disables disk caching — every characterization
            simulates; pass a path (or ``"default"`` for the standard
            ``~/.cache/repro-hd`` location) to enable
            characterize-once/evaluate-many.
        engine: Simulation kernel: ``"auto"`` (default), ``"bool"``,
            ``"packed"`` or ``"compiled"``.  Engines are bit-identical
            by contract; this is a speed knob.
        jobs: Worker processes for multi-module characterization fan-out
            (``Session.characterize_many``); single characterizations run
            inline.
        config: Optional :class:`~repro.eval.harness.ExperimentConfig`
            overriding every knob at once; ``engine=`` still wins for the
            kernel selection.
        enhanced: Fit/serve the enhanced (stable-zeros) model by default;
            per-call ``enhanced=`` arguments override.
    """

    def __init__(
        self,
        cache_dir: Optional[str] = None,
        engine: Optional[str] = None,
        jobs: Any = 1,
        config: Any = None,
        enhanced: bool = False,
        **legacy,
    ):
        engine = pop_renamed_kwarg(
            legacy, "simulation_engine", "engine", "Session", engine
        )
        jobs_value = pop_renamed_kwarg(
            legacy, "n_jobs", "jobs", "Session",
            jobs if jobs != 1 else None,
        )
        if jobs_value is not None:
            jobs = jobs_value
        if legacy:
            raise TypeError(
                f"unexpected keyword arguments: {sorted(legacy)}"
            )
        if config is None:
            from .eval.harness import ExperimentConfig

            config = ExperimentConfig()
        if engine is not None:
            config = dataclasses.replace(config, engine=engine)
        self.config = config
        self.jobs = int(jobs)
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.enhanced = bool(enhanced)
        if cache_dir is None:
            self.cache: Optional[ModelCache] = None
        elif cache_dir == "default":
            self.cache = ModelCache()
        else:
            self.cache = ModelCache(cache_dir)
        self._registry = None

    # ------------------------------------------------------------------
    # Characterization
    # ------------------------------------------------------------------
    def characterize(
        self, kind: str, width: int, enhanced: Optional[bool] = None
    ) -> CharacterizationResult:
        """Characterize one module instance (cache-backed, strict)."""
        report = characterize_jobs(
            [CharacterizationJob(
                kind, int(width), self._enhanced(enhanced)
            )],
            config=self.config, jobs=1, cache=self.cache, strict=True,
        )
        return report.results[0]

    def characterize_many(
        self, requests: Sequence[Union[CharacterizationJob, tuple]]
    ):
        """Fan a batch of ``(kind, width[, enhanced])`` requests out.

        Returns the underlying
        :class:`~repro.runtime.service.ServiceReport` (per-job results,
        hit/miss counters, failures) using this session's worker count.
        """
        normalized = [
            job if isinstance(job, CharacterizationJob)
            else CharacterizationJob(*job)
            for job in requests
        ]
        return characterize_jobs(
            normalized, config=self.config, jobs=self.jobs,
            cache=self.cache, strict=False,
        )

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------
    def estimate(
        self,
        kind: str,
        width: int,
        stream: Any,
        enhanced: Optional[bool] = None,
        node: Any = None,
        vdd: Optional[float] = None,
        f_clk: Optional[float] = None,
    ) -> EstimationResult:
        """Trace-based estimation of a concrete stimulus.

        ``stream`` is either a ``[n, input_bits]`` 0/1 matrix or a list
        of per-operand signed-word lists (the serve wire format).  With
        ``node=`` (or ``vdd=``) the normalized result comes back wrapped
        in a :class:`~repro.tech.CalibratedEstimate` carrying physical
        units; without them it is returned untouched.
        """
        served = self._served(kind, width, enhanced)
        bits = self._as_bits(served, stream)
        result = served.estimator.estimate_from_bits(bits)
        return self._calibrate(result, served, node, vdd, f_clk)

    def estimate_distribution(
        self,
        kind: str,
        width: int,
        distribution: Sequence[float],
        enhanced: Optional[bool] = None,
        node: Any = None,
        vdd: Optional[float] = None,
        f_clk: Optional[float] = None,
    ) -> EstimationResult:
        """Distribution-based estimation (Section 6.3 fast path)."""
        served = self._served(kind, width, enhanced)
        result = served.estimator.estimate_from_distribution(
            np.asarray(distribution, dtype=np.float64)
        )
        return self._calibrate(result, served, node, vdd, f_clk)

    def estimate_analytic(
        self,
        kind: str,
        width: int,
        operand_stats: Sequence[Union[WordStats, Dict[str, float]]],
        use_distribution: bool = True,
        enhanced: Optional[bool] = None,
        node: Any = None,
        vdd: Optional[float] = None,
        f_clk: Optional[float] = None,
    ) -> EstimationResult:
        """Fully analytic estimation from (μ, σ², ρ) word statistics."""
        served = self._served(kind, width, enhanced)
        stats = [
            s if isinstance(s, WordStats) else WordStats(
                mean=float(s["mean"]),
                variance=float(s["variance"]),
                rho=float(s.get("rho", 0.0)),
            )
            for s in operand_stats
        ]
        result = served.estimator.estimate_analytic(
            served.module, stats, use_distribution=use_distribution
        )
        return self._calibrate(result, served, node, vdd, f_clk)

    def stream(
        self,
        kind: str,
        width: int,
        enhanced: Optional[bool] = None,
        self_check: bool = False,
        check_prefix: int = 8,
        node: Any = None,
        vdd: Optional[float] = None,
        f_clk: Optional[float] = None,
    ):
        """An incremental estimation handle over a long trace.

        Returns a :class:`~repro.serve.sessions.StreamingEstimator`: feed
        it ``[n, input_bits]`` 0/1 segments with ``.append(segment)`` (or
        its alias ``.feed``) and read the running
        :class:`~repro.serve.sessions.RunningEstimate` it returns after
        each one; ``.finalize()`` yields the last estimate.  After K
        appends the running average equals :meth:`estimate` on the
        concatenated trace to well within 1e-9.  With ``self_check=True``
        every appended segment's leading ``check_prefix`` transitions are
        re-verified against the gate-level simulator.  With ``node=`` (or
        ``vdd=``) every running estimate carries a ``physical`` unit
        block alongside the normalized figures.
        """
        from .serve.sessions import StreamingEstimator
        from .tech import Calibration

        calibration = Calibration.from_spec(node=node, vdd=vdd, f_clk=f_clk)
        return StreamingEstimator(
            self._served(kind, width, enhanced),
            self_check=self_check,
            check_prefix=check_prefix,
            calibration=None if calibration.is_identity else calibration,
        )

    # ------------------------------------------------------------------
    # Lower layers, for callers that need them
    # ------------------------------------------------------------------
    def registry(self):
        """The session's :class:`~repro.serve.registry.ModelRegistry`.

        Created lazily, shares the session's config and cache; repeated
        calls return the same instance (so materialized models are
        reused).
        """
        if self._registry is None:
            from .serve.registry import ModelRegistry

            self._registry = ModelRegistry(
                config=self.config, cache=self.cache
            )
        return self._registry

    def estimator(
        self, kind: str, width: int, enhanced: Optional[bool] = None
    ) -> PowerEstimator:
        """A ready :class:`PowerEstimator` for one module instance."""
        return self._served(kind, width, enhanced).estimator

    # ------------------------------------------------------------------
    def _enhanced(self, override: Optional[bool]) -> bool:
        return self.enhanced if override is None else bool(override)

    @staticmethod
    def _calibrate(result, served, node, vdd, f_clk):
        """Apply an optional post-hoc calibration to a facade result.

        The identity (no node, no vdd) returns ``result`` itself — the
        facade parity contract (≤ 1e-9 vs. the layered calls) is really
        bit-identity here.
        """
        if node is None and vdd is None and f_clk is None:
            return result
        from .tech import Calibration

        calibration = Calibration.from_spec(node=node, vdd=vdd, f_clk=f_clk)
        return calibration.apply(result, netlist=served.module)

    def _served(self, kind: str, width: int, enhanced: Optional[bool]):
        return self.registry().get(
            kind, int(width), enhanced=self._enhanced(enhanced)
        )

    @staticmethod
    def _as_bits(served, stream: Any) -> np.ndarray:
        if isinstance(stream, np.ndarray) and stream.ndim == 2:
            return stream.astype(bool)
        if (isinstance(stream, (list, tuple)) and stream
                and all(isinstance(s, (list, tuple, np.ndarray))
                        for s in stream)):
            first = np.asarray(stream[0])
            if first.ndim == 1 and len(stream) == served.module.n_operands:
                from .serve.batching import streams_to_bits

                return streams_to_bits(served.module, stream)
            return np.asarray(stream, dtype=bool)
        raise TypeError(
            "stream must be a 2-D 0/1 matrix or per-operand word lists"
        )

    def __repr__(self) -> str:
        cache = (
            str(self.cache.directory) if self.cache is not None else None
        )
        return (
            f"Session(engine={self.config.engine!r}, jobs={self.jobs}, "
            f"cache={cache!r})"
        )
