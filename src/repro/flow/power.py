"""Datapath power budgeting over dataflow graphs.

:class:`DatapathPower` binds every operator of a
:class:`~repro.stats.propagate.DataflowGraph` to a datapath module and its
characterized Hd model, then produces power budgets at three fidelity
levels:

1. :meth:`estimate_analytic` — word statistics only (Section 6's fast
   path: propagation + Eq. 18 distributions + macro-models);
2. :meth:`estimate_from_words` — word-level functional simulation of the
   graph, bit-level Hd extraction, macro-model lookup (no gate
   simulation);
3. :meth:`reference_from_words` — full gate-level power simulation of
   every bound module (the validation yardstick).

Operator-to-module defaults: ``add``/``sub`` map to ripple adder and
subtractor, ``delay`` to a register bank, ``mux`` to a word multiplexer and
``cmul`` to a CSD constant-multiplier netlist (coefficients quantized to
``frac_bits`` fractional bits).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..circuit.power import PowerSimulator
from ..core.characterize import characterize_module
from ..core.distribution import hd_distribution_from_dbt, compose_hd_distributions
from ..core.estimator import PowerEstimator
from ..core.events import classify_transitions
from ..core.hd_model import HdPowerModel
from ..modules.library import DatapathModule
from ..modules.multipliers import constant_multiplier, golden_constant_multiplier
from ..signals.encoding import saturate, to_unsigned
from ..stats.dbt import DbtModel
from ..stats.propagate import DataflowGraph
from ..stats.wordstats import WordStats
from .library import ModelLibrary

DEFAULT_OP_KINDS: Dict[str, str] = {
    "add": "ripple_adder",
    "sub": "subtractor",
    "delay": "register_bank",
    "mux": "mux_word",
}


@dataclass(frozen=True)
class NodePower:
    """Average per-cycle charge attributed to one operator."""

    node: str
    kind: str
    width: int
    average_charge: float


@dataclass(frozen=True)
class PowerBudget:
    """A per-node budget plus its method label."""

    method: str
    nodes: Tuple[NodePower, ...]

    @property
    def total(self) -> float:
        return float(sum(n.average_charge for n in self.nodes))

    def by_node(self) -> Dict[str, NodePower]:
        return {n.node: n for n in self.nodes}

    def render(self) -> str:
        lines = [f"power budget ({self.method})"]
        for n in self.nodes:
            lines.append(
                f"  {n.node:16s} {n.kind:18s} w={n.width:<3d} "
                f"{n.average_charge:10.2f}"
            )
        lines.append(f"  {'TOTAL':16s} {'':18s} {'':5s} {self.total:10.2f}")
        return "\n".join(lines)


class DatapathPower:
    """Bind a dataflow graph to macro-models and budget its power.

    Args:
        graph: The dataflow graph (propagated or not; ``propagate`` is
            invoked on demand).
        library: Shared :class:`ModelLibrary` for registry module kinds.
        default_width: Operand width used for nodes without an explicit
            :meth:`set_width`.
        op_kinds: Override of the operator-to-module-kind mapping.
        frac_bits: Fractional bits for quantizing ``cmul`` coefficients.
    """

    def __init__(
        self,
        graph: DataflowGraph,
        library: Optional[ModelLibrary] = None,
        default_width: int = 8,
        op_kinds: Optional[Dict[str, str]] = None,
        frac_bits: int = 8,
    ):
        self.graph = graph
        self.library = library or ModelLibrary()
        self.default_width = default_width
        self.op_kinds = dict(DEFAULT_OP_KINDS)
        if op_kinds:
            self.op_kinds.update(op_kinds)
        self.frac_bits = frac_bits
        self._widths: Dict[str, int] = {}
        self._cmul_cache: Dict[Tuple[int, int], Tuple[DatapathModule, HdPowerModel]] = {}
        self._propagated = False

    # ------------------------------------------------------------------
    def set_width(self, node: str, width: int) -> None:
        """Fix the operand width used for one operator node."""
        if width < 1:
            raise ValueError("width must be >= 1")
        self._widths[node] = width

    def width_of(self, node: str) -> int:
        return self._widths.get(node, self.default_width)

    def operator_nodes(self) -> List[str]:
        """Nodes that consume datapath power (everything but inputs)."""
        return [
            name
            for name in self.graph.names()
            if self.graph.node(name).op != "input"
        ]

    # ------------------------------------------------------------------
    def _cmul_binding(
        self, width: int, coefficient: float
    ) -> Tuple[DatapathModule, HdPowerModel]:
        mantissa = int(round(coefficient * (1 << self.frac_bits)))
        key = (width, mantissa)
        if key not in self._cmul_cache:
            netlist = constant_multiplier(width, mantissa)
            module = DatapathModule(
                kind=f"constant_multiplier[{mantissa}]",
                operand_specs=(("a", width),),
                netlist=netlist,
                golden=golden_constant_multiplier(
                    width, mantissa, len(netlist.outputs)
                ),
                output_width=len(netlist.outputs),
            )
            model = characterize_module(
                module,
                n_patterns=self.library.n_patterns,
                seed=self.library.seed + mantissa + 7 * width,
                glitch_aware=self.library.glitch_aware,
            ).model
            self._cmul_cache[key] = (module, model)
        return self._cmul_cache[key]

    def _binding(self, name: str) -> Tuple[DatapathModule, HdPowerModel]:
        node = self.graph.node(name)
        width = self.width_of(name)
        if node.op == "cmul":
            return self._cmul_binding(width, node.coefficient)
        kind = self.op_kinds[node.op]
        return self.library.module(kind, width), self.library.model(kind, width)

    # ------------------------------------------------------------------
    # Path 1: fully analytic
    # ------------------------------------------------------------------
    def estimate_analytic(self) -> PowerBudget:
        """Budget from propagated word statistics only (no simulation)."""
        if not self._propagated:
            self.graph.propagate()
            self._propagated = True
        rows: List[NodePower] = []
        for name in self.operator_nodes():
            node = self.graph.node(name)
            module, model = self._binding(name)
            width = self.width_of(name)
            pmfs = []
            for src in node.inputs:
                stats = self.graph.stats(src)
                pmfs.append(
                    hd_distribution_from_dbt(
                        DbtModel.from_wordstats(stats, width)
                    )
                )
            if node.op == "mux":
                # Select bit: Bernoulli(p) toggles with rate 2p(1-p).
                p = node.select_prob
                toggle = 2.0 * p * (1.0 - p)
                pmfs.append(np.array([1.0 - toggle, toggle]))
            pmf = compose_hd_distributions(pmfs)
            charge = PowerEstimator(model).estimate_from_distribution(
                _fit_length(pmf, model.width + 1)
            ).average_charge
            rows.append(NodePower(name, module.kind, width, charge))
        return PowerBudget("analytic", tuple(rows))

    # ------------------------------------------------------------------
    # Path 2: word-level simulation + macro-models
    # ------------------------------------------------------------------
    def _operand_bits(
        self, name: str, values: Dict[str, np.ndarray]
    ) -> np.ndarray:
        node = self.graph.node(name)
        width = self.width_of(name)
        module, _ = self._binding(name)
        operands: List[np.ndarray] = []
        for src in node.inputs:
            words = saturate(values[src], width)
            operands.append(to_unsigned(words, width))
        if node.op == "mux":
            operands.append(
                values[name + "$select"].astype(np.int64)
            )
        return module.pack_inputs(*operands)

    def estimate_from_words(
        self, inputs: Dict[str, np.ndarray], seed: int = 0
    ) -> PowerBudget:
        """Budget from word-level graph simulation + macro-models."""
        values = self.graph.simulate(inputs, seed=seed)
        rows: List[NodePower] = []
        for name in self.operator_nodes():
            module, model = self._binding(name)
            bits = self._operand_bits(name, values)
            events = classify_transitions(bits)
            charge = float(model.predict_cycle(events.hd).mean())
            rows.append(
                NodePower(name, module.kind, self.width_of(name), charge)
            )
        return PowerBudget("word-level + macro-model", tuple(rows))

    # ------------------------------------------------------------------
    # Path 3: gate-level reference
    # ------------------------------------------------------------------
    def reference_from_words(
        self, inputs: Dict[str, np.ndarray], seed: int = 0
    ) -> PowerBudget:
        """Budget from gate-level simulation of every bound module."""
        values = self.graph.simulate(inputs, seed=seed)
        rows: List[NodePower] = []
        for name in self.operator_nodes():
            module, _ = self._binding(name)
            bits = self._operand_bits(name, values)
            simulator = PowerSimulator(
                module.compiled, glitch_aware=self.library.glitch_aware
            )
            charge = simulator.simulate(bits).average_charge
            rows.append(
                NodePower(name, module.kind, self.width_of(name), charge)
            )
        return PowerBudget("gate-level reference", tuple(rows))


def _fit_length(pmf: np.ndarray, length: int) -> np.ndarray:
    """Pad or fold a pmf to the model's class count.

    Composition can yield support beyond a module's input bit count when
    operand widths were clipped; excess mass folds onto the top class.
    """
    pmf = np.asarray(pmf, dtype=np.float64)
    if len(pmf) == length:
        return pmf
    if len(pmf) < length:
        return np.concatenate([pmf, np.zeros(length - len(pmf))])
    folded = pmf[:length].copy()
    folded[-1] += pmf[length:].sum()
    return folded
