"""Design-level power budgeting: model libraries and dataflow binding."""

from .graph_io import graph_from_dict, graph_to_dict, load_graph
from .library import ModelLibrary
from .power import DEFAULT_OP_KINDS, DatapathPower, NodePower, PowerBudget

__all__ = [
    "DEFAULT_OP_KINDS",
    "DatapathPower",
    "ModelLibrary",
    "NodePower",
    "PowerBudget",
    "graph_from_dict",
    "graph_to_dict",
    "load_graph",
]
