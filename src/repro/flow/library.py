"""Macro-model library: characterize once, reuse everywhere.

A :class:`ModelLibrary` is the deployment artifact of the paper's flow: a
cache of characterized :class:`~repro.core.hd_model.HdPowerModel` instances
per (module kind, operand width), optionally persisted to a directory of
JSON files so a design team characterizes each module family exactly once.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from ..core.characterize import characterize_module
from ..core.hd_model import HdPowerModel
from ..core.serialize import load_model, save_model
from ..modules.library import DatapathModule, make_module

PathLike = Union[str, Path]


class ModelLibrary:
    """Cache of characterized Hd models, optionally disk-backed.

    Args:
        n_patterns: Characterization pattern budget per model.
        seed: Base seed; per-model seeds derive deterministically.
        directory: If given, models are loaded from / saved to
            ``<directory>/<kind>_<width>.json``.
        glitch_aware: Reference simulator selection.
    """

    def __init__(
        self,
        n_patterns: int = 4000,
        seed: int = 0,
        directory: Optional[PathLike] = None,
        glitch_aware: bool = True,
    ):
        self.n_patterns = n_patterns
        self.seed = seed
        self.directory = Path(directory) if directory is not None else None
        self.glitch_aware = glitch_aware
        self._models: Dict[Tuple[str, int], HdPowerModel] = {}
        self._modules: Dict[Tuple[str, int], DatapathModule] = {}

    # ------------------------------------------------------------------
    def module(self, kind: str, width: int) -> DatapathModule:
        key = (kind, width)
        if key not in self._modules:
            self._modules[key] = make_module(kind, width)
        return self._modules[key]

    def _path(self, kind: str, width: int) -> Optional[Path]:
        if self.directory is None:
            return None
        return self.directory / f"{kind}_{width}.json"

    def model(self, kind: str, width: int) -> HdPowerModel:
        """Fetch (characterizing or loading on demand) one model."""
        key = (kind, width)
        if key in self._models:
            return self._models[key]
        path = self._path(kind, width)
        if path is not None and path.exists():
            loaded = load_model(path)
            if not isinstance(loaded, HdPowerModel):
                raise TypeError(f"{path} does not hold a basic Hd model")
            self._models[key] = loaded
            return loaded
        module = self.module(kind, width)
        result = characterize_module(
            module,
            n_patterns=self.n_patterns,
            seed=self.seed + 31 * width + sum(map(ord, kind)),
            glitch_aware=self.glitch_aware,
        )
        model = result.model
        self._models[key] = model
        if path is not None:
            path.parent.mkdir(parents=True, exist_ok=True)
            save_model(path, model)
        return model

    def register(self, kind: str, width: int, model: HdPowerModel) -> None:
        """Inject an externally produced model (e.g. from regression)."""
        if model.width != self.module(kind, width).input_bits:
            raise ValueError(
                f"model width {model.width} does not match {kind}/{width}"
            )
        self._models[(kind, width)] = model

    def cached(self) -> Tuple[Tuple[str, int], ...]:
        """Keys currently held in memory."""
        return tuple(sorted(self._models))
