"""JSON description of dataflow graphs (for CLI-driven budgeting).

Schema::

    {
      "inputs": {
        "x": {"mean": 0.0, "variance": 400.0, "rho": 0.9}
      },
      "nodes": [
        {"name": "x1", "op": "delay", "inputs": ["x"]},
        {"name": "p0", "op": "cmul", "inputs": ["x"], "coefficient": 0.5},
        {"name": "y",  "op": "add", "inputs": ["p0", "x1"], "width": 10}
      ]
    }

Per-node ``width`` overrides the budgeting default; ``select_prob`` applies
to mux nodes.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Tuple, Union

from ..stats.propagate import DataflowGraph
from ..stats.wordstats import WordStats

PathLike = Union[str, Path]

_ARITY = {"add": 2, "sub": 2, "mux": 2, "cmul": 1, "delay": 1}


def graph_from_dict(data: Dict[str, Any]) -> Tuple[DataflowGraph, Dict[str, int]]:
    """Build a :class:`DataflowGraph` from the JSON schema.

    Returns:
        ``(graph, widths)`` where ``widths`` maps node names to explicit
        per-node operand widths (empty for nodes without one).
    """
    graph = DataflowGraph()
    widths: Dict[str, int] = {}
    inputs = data.get("inputs")
    if not inputs:
        raise ValueError("graph needs at least one input")
    for name, stats in inputs.items():
        try:
            word_stats = WordStats(
                mean=float(stats["mean"]),
                variance=float(stats["variance"]),
                rho=float(stats.get("rho", 0.0)),
            )
        except KeyError as missing:
            raise ValueError(
                f"input {name!r} is missing {missing}"
            ) from None
        graph.add_input(name, word_stats)
    for node in data.get("nodes", []):
        try:
            name, op = node["name"], node["op"]
        except KeyError as missing:
            raise ValueError(f"node is missing {missing}") from None
        sources = node.get("inputs", [])
        if op not in _ARITY:
            raise ValueError(f"unknown op {op!r} in node {name!r}")
        if len(sources) != _ARITY[op]:
            raise ValueError(
                f"node {name!r}: op {op!r} takes {_ARITY[op]} inputs, "
                f"got {len(sources)}"
            )
        if op == "add":
            graph.add(name, *sources)
        elif op == "sub":
            graph.sub(name, *sources)
        elif op == "cmul":
            graph.cmul(name, sources[0], float(node.get("coefficient", 1.0)))
        elif op == "delay":
            graph.delay(name, sources[0])
        elif op == "mux":
            graph.mux(name, *sources,
                      select_prob=float(node.get("select_prob", 0.5)))
        if "width" in node:
            widths[name] = int(node["width"])
    return graph, widths


def load_graph(path: PathLike) -> Tuple[DataflowGraph, Dict[str, int]]:
    """Load a JSON graph description from disk."""
    return graph_from_dict(json.loads(Path(path).read_text()))


def graph_to_dict(graph: DataflowGraph,
                  widths: Dict[str, int] | None = None) -> Dict[str, Any]:
    """Serialize a graph (with input statistics) back to the JSON schema."""
    widths = widths or {}
    inputs: Dict[str, Any] = {}
    nodes = []
    for name in graph.names():
        node = graph.node(name)
        if node.op == "input":
            stats = node.stats
            if stats is None:
                raise ValueError(f"input {name!r} has no statistics")
            inputs[name] = {
                "mean": stats.mean,
                "variance": stats.variance,
                "rho": stats.rho,
            }
            continue
        entry: Dict[str, Any] = {
            "name": name,
            "op": node.op,
            "inputs": list(node.inputs),
        }
        if node.op == "cmul":
            entry["coefficient"] = node.coefficient
        if node.op == "mux":
            entry["select_prob"] = node.select_prob
        if name in widths:
            entry["width"] = widths[name]
        nodes.append(entry)
    return {"inputs": inputs, "nodes": nodes}
