"""repro: Hamming-distance power macro-models for datapath components.

Reproduction of Jochens, Kruse, Schmidt, Nebel, "A New Parameterizable
Power Macro-Model for Datapath Components", DATE 1999.

Subpackages:
    circuit   gate-level substrate: netlists, glitch-aware power
              simulation, hotspots, Verilog I/O, pipelining, units
    modules   parameterizable datapath generators (adders, multipliers,
              absval, MAC, shifters, counters, ...)
    signals   stimulus classes I-V, encodings, bus codes
    stats     word/bit-level statistics, Landman DBT model, dataflow
              statistics propagation, goodness-of-fit metrics
    core      the paper's contribution: Hd power models (basic, enhanced,
              per-operand), characterization, width regression, analytic
              Hd distributions, estimation, adaptation, persistence
    eval      experiment harness reproducing every table and figure
    runtime   characterization service: parallel job fan-out and the
              persistent content-addressed model/trace cache
    flow      model libraries and dataflow power budgeting
    opt       model-driven low-power optimization (binding, reordering)
    tech      technology calibration: node tables, physical units
              (coulombs/joules/watts/area/leakage), PAE reports
    cli       the `repro-power` command line

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

__version__ = "1.0.0"

__all__ = [
    # The public facade (PR 5) — the documented front door.
    "Session",
    "api",
    "obs",
    # Subpackages.
    "circuit",
    "cli",
    "core",
    "eval",
    "flow",
    "modules",
    "opt",
    "runtime",
    "serve",
    "signals",
    "stats",
    "tech",
    "verify",
]

_LAZY = {"Session": ("repro.api", "Session")}


def __getattr__(name):
    # Lazy so that ``import repro`` stays light: the facade pulls in
    # numpy-heavy layers only when actually touched.
    if name in _LAZY:
        import importlib

        module_name, attribute = _LAZY[name]
        value = getattr(importlib.import_module(module_name), attribute)
        globals()[name] = value
        return value
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(__all__))
