"""Bit-width parameterization by complexity regression (Section 5).

The coefficients ``p_i`` of a module *family* are regressed against
structural complexity functions of the operand width (Eq. 6-10): linear
``[m, 1]`` for ripple adders, quadratic ``[m², m, 1]`` for array
multipliers.  A small *prototype set* of characterized instances then
predicts the coefficients of any other width.

Coefficient indexing across widths: class ``E_i`` exists for every
prototype whose input bit count is at least ``i``; the regression for
``r_i`` uses exactly those prototypes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..modules.library import MODULE_KINDS, make_module, registry_entry
from .characterize import CharacterizationResult, characterize_module
from .hd_model import HdPowerModel, _fill_missing


@dataclass(frozen=True)
class WidthRegression:
    """Regressed coefficient model ``p_i(m) = R_i^T · M(m)`` (Eq. 9).

    Attributes:
        kind: Module kind name (keys the complexity feature function).
        rows: ``rows[i]`` is the regression vector ``R_i`` for Hd class
            ``i`` (None where no prototype data existed).
        prototype_widths: Operand widths used for the fit.
    """

    kind: str
    rows: Tuple[Optional[np.ndarray], ...]
    prototype_widths: Tuple[int, ...]

    @property
    def n_features(self) -> int:
        entry = registry_entry(self.kind)
        return len(entry.complexity_features(4))

    def coefficient(self, i: int, width: int) -> float:
        """Predict ``p_i`` for an instance of the given operand width."""
        if i >= len(self.rows) or self.rows[i] is None:
            raise ValueError(f"no regression data for Hd class {i}")
        features = registry_entry(self.kind).complexity_features(width)
        return float(self.rows[i] @ features)

    def predict_model(self, width: int, input_bits: int) -> HdPowerModel:
        """Predict a full :class:`HdPowerModel` for an unseen width.

        Args:
            width: Operand width of the target instance.
            input_bits: Input bit count ``m`` of the target instance.

        Classes beyond the regression's reach (larger than any prototype's
        input bit count) are extrapolated from the filled coefficient
        vector; negative predictions are clamped to zero.
        """
        coefficients = np.full(input_bits + 1, np.nan)
        coefficients[0] = 0.0
        features = registry_entry(self.kind).complexity_features(width)
        for i in range(1, min(len(self.rows), input_bits + 1)):
            row = self.rows[i]
            if row is not None:
                coefficients[i] = max(float(row @ features), 0.0)
        coefficients = _fill_missing(coefficients)
        return HdPowerModel(
            name=f"{self.kind}_{width}(regressed)",
            width=input_bits,
            coefficients=np.maximum(coefficients, 0.0),
        )


def fit_width_regression(
    kind: str,
    prototypes: Dict[int, HdPowerModel],
    min_class_count: int = 5,
) -> WidthRegression:
    """Least-squares fit of ``R_i`` over characterized prototypes (Eq. 10).

    Args:
        kind: Module kind (supplies the complexity feature function).
        prototypes: Map ``operand width -> characterized basic model``.
        min_class_count: Prototype classes with fewer characterization
            samples than this still participate (their coefficients were
            interpolated during fitting), but classes missing entirely do
            not.

    For class indices supported by fewer prototypes than there are
    features, ``numpy.linalg.lstsq`` returns the minimum-norm solution —
    exactly determined or underdetermined fits degrade gracefully.
    """
    try:
        entry = registry_entry(kind)
    except ValueError:
        raise KeyError(f"unknown module kind {kind!r}") from None
    if not prototypes:
        raise ValueError("need at least one prototype")
    max_class = max(model.width for model in prototypes.values())
    rows: List[Optional[np.ndarray]] = [None] * (max_class + 1)
    for i in range(1, max_class + 1):
        feats: List[np.ndarray] = []
        targets: List[float] = []
        for width, model in sorted(prototypes.items()):
            if model.width >= i:
                feats.append(entry.complexity_features(width))
                targets.append(float(model.coefficients[i]))
        if not feats:
            continue
        design = np.asarray(feats, dtype=np.float64)
        y = np.asarray(targets, dtype=np.float64)
        solution, *_ = np.linalg.lstsq(design, y, rcond=None)
        rows[i] = solution
    return WidthRegression(
        kind=kind,
        rows=tuple(rows),
        prototype_widths=tuple(sorted(prototypes)),
    )


# ----------------------------------------------------------------------
# Prototype-set construction (Section 5's ALL / SEC / THI experiment)
# ----------------------------------------------------------------------
def prototype_widths(
    full: Sequence[int] = (4, 6, 8, 10, 12, 14, 16), subset: str = "ALL"
) -> Tuple[int, ...]:
    """Prototype width subsets as defined in Section 5.

    * ``ALL`` — every width (4..16 step 2 by default),
    * ``SEC`` — every second prototype (4, 8, 12, 16),
    * ``THI`` — every third prototype (4, 10, 16).
    """
    full = tuple(full)
    if subset == "ALL":
        return full
    if subset == "SEC":
        return full[::2]
    if subset == "THI":
        return full[::3]
    raise ValueError(f"unknown subset {subset!r}; use ALL, SEC or THI")


def characterize_prototype_set(
    kind: str,
    widths: Sequence[int],
    n_patterns: int = 3000,
    seed: int = 0,
    glitch_aware: bool = True,
) -> Dict[int, HdPowerModel]:
    """Characterize a family at several widths (the paper's prototype set)."""
    models: Dict[int, HdPowerModel] = {}
    for width in widths:
        module = make_module(kind, width)
        result = characterize_module(
            module, n_patterns=n_patterns, seed=seed + width,
            glitch_aware=glitch_aware,
        )
        models[width] = result.model
    return models


def coefficient_errors(
    regression: WidthRegression,
    instance: HdPowerModel,
    width: int,
    class_indices: Sequence[int],
) -> Dict[int, float]:
    """Relative error (%) of regressed vs instance coefficients (Table 3)."""
    errors: Dict[int, float] = {}
    for i in class_indices:
        if i > instance.width:
            continue
        reference = float(instance.coefficients[i])
        if reference == 0.0:
            continue
        predicted = regression.coefficient(i, width)
        errors[i] = abs(predicted - reference) / reference * 100.0
    return errors


def average_coefficient_error(
    regression: WidthRegression, instance: HdPowerModel, width: int
) -> float:
    """Mean relative coefficient error (%) over all classes (Table 3 col 6)."""
    errors = coefficient_errors(
        regression, instance, width, range(1, instance.width + 1)
    )
    return float(np.mean(list(errors.values()))) if errors else 0.0


# ----------------------------------------------------------------------
# Rectangular multipliers (Eq. 8): p_i(m1, m0) = r2 m1 m0 + r1 m1 + r0
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RectRegression:
    """Regressed coefficients over rectangular multiplier shapes.

    Attributes:
        kind: Multiplier family name.
        rows: ``rows[i]`` is the Eq. 8 regression vector for class ``i``.
        prototype_shapes: ``(m1, m0)`` pairs used for the fit.
    """

    kind: str
    rows: Tuple[Optional[np.ndarray], ...]
    prototype_shapes: Tuple[Tuple[int, int], ...]

    def coefficient(self, i: int, width_a: int, width_b: int) -> float:
        """Predict ``p_i`` for an ``m1 x m0`` instance."""
        from ..modules.library import rect_complexity_features

        if i >= len(self.rows) or self.rows[i] is None:
            raise ValueError(f"no regression data for Hd class {i}")
        return float(self.rows[i] @ rect_complexity_features(width_a, width_b))

    def predict_model(self, width_a: int, width_b: int) -> HdPowerModel:
        """Predict a full model for an unseen rectangular shape."""
        from ..modules.library import rect_complexity_features

        input_bits = width_a + width_b
        coefficients = np.full(input_bits + 1, np.nan)
        coefficients[0] = 0.0
        features = rect_complexity_features(width_a, width_b)
        for i in range(1, min(len(self.rows), input_bits + 1)):
            row = self.rows[i]
            if row is not None:
                coefficients[i] = max(float(row @ features), 0.0)
        coefficients = _fill_missing(coefficients)
        return HdPowerModel(
            name=f"{self.kind}_{width_a}x{width_b}(regressed)",
            width=input_bits,
            coefficients=np.maximum(coefficients, 0.0),
        )


def fit_rect_regression(
    kind: str,
    prototypes: Dict[Tuple[int, int], HdPowerModel],
) -> RectRegression:
    """Least-squares fit of Eq. 8 over rectangular prototypes.

    Args:
        kind: Multiplier family.
        prototypes: Map ``(m1, m0) -> characterized model``.
    """
    from ..modules.library import rect_complexity_features

    if not prototypes:
        raise ValueError("need at least one prototype")
    max_class = max(model.width for model in prototypes.values())
    rows: List[Optional[np.ndarray]] = [None] * (max_class + 1)
    for i in range(1, max_class + 1):
        feats: List[np.ndarray] = []
        targets: List[float] = []
        for (wa, wb), model in sorted(prototypes.items()):
            if model.width >= i:
                feats.append(rect_complexity_features(wa, wb))
                targets.append(float(model.coefficients[i]))
        if not feats:
            continue
        design = np.asarray(feats, dtype=np.float64)
        y = np.asarray(targets, dtype=np.float64)
        solution, *_ = np.linalg.lstsq(design, y, rcond=None)
        rows[i] = solution
    return RectRegression(
        kind=kind,
        rows=tuple(rows),
        prototype_shapes=tuple(sorted(prototypes)),
    )


def characterize_rect_prototype_set(
    kind: str,
    shapes: Sequence[Tuple[int, int]],
    n_patterns: int = 3000,
    seed: int = 0,
    glitch_aware: bool = True,
) -> Dict[Tuple[int, int], HdPowerModel]:
    """Characterize rectangular multiplier prototypes."""
    from ..modules.library import make_rect_multiplier

    models: Dict[Tuple[int, int], HdPowerModel] = {}
    for wa, wb in shapes:
        module = make_rect_multiplier(kind, wa, wb)
        result = characterize_module(
            module, n_patterns=n_patterns, seed=seed + 13 * wa + wb,
            glitch_aware=glitch_aware,
        )
        models[(wa, wb)] = result.model
    return models
