"""The paper's contribution: the parameterizable Hd power macro-model."""

from .adaptation import AdaptiveHdModel
from .accumulator import ClassAccumulator
from .characterize import (
    CHARACTERIZATION_VERSION,
    CharacterizationResult,
    characterize_module,
    corner_input_bits,
    mixed_input_bits,
    random_input_bits,
    uniform_hd_input_bits,
)
from .distribution import (
    average_hd_from_dbt,
    binomial_distribution,
    compose_hd_distributions,
    compose_joint_distributions,
    distribution_mean,
    gaussian_negative_prob,
    hd_distribution_from_dbt,
    joint_hd_stable_zeros,
    module_hd_distribution,
    module_joint_distribution,
    sign_region_distribution,
)
from .enhanced import EnhancedHdModel
from .estimator import EstimationResult, PowerEstimator
from .events import TransitionEvents, classify_transitions
from .hd_model import HdPowerModel
from .metrics import average_error, average_error_scalar, cycle_error
from .operand_model import OperandHdModel, operand_hamming_distances
from .regression import (
    RectRegression,
    WidthRegression,
    characterize_rect_prototype_set,
    fit_rect_regression,
    average_coefficient_error,
    characterize_prototype_set,
    coefficient_errors,
    fit_width_regression,
    prototype_widths,
)

__all__ = [
    "AdaptiveHdModel",
    "CHARACTERIZATION_VERSION",
    "CharacterizationResult",
    "ClassAccumulator",
    "EnhancedHdModel",
    "EstimationResult",
    "HdPowerModel",
    "OperandHdModel",
    "PowerEstimator",
    "RectRegression",
    "TransitionEvents",
    "WidthRegression",
    "average_coefficient_error",
    "average_error",
    "average_error_scalar",
    "average_hd_from_dbt",
    "binomial_distribution",
    "characterize_module",
    "characterize_prototype_set",
    "characterize_rect_prototype_set",
    "fit_rect_regression",
    "classify_transitions",
    "coefficient_errors",
    "compose_hd_distributions",
    "compose_joint_distributions",
    "corner_input_bits",
    "cycle_error",
    "distribution_mean",
    "mixed_input_bits",
    "fit_width_regression",
    "gaussian_negative_prob",
    "hd_distribution_from_dbt",
    "joint_hd_stable_zeros",
    "module_hd_distribution",
    "module_joint_distribution",
    "operand_hamming_distances",
    "prototype_widths",
    "random_input_bits",
    "sign_region_distribution",
    "uniform_hd_input_bits",
]
