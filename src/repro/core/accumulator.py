"""Incremental switching-event statistics (the characterization hot path).

:func:`~repro.core.characterize.characterize_module` historically kept every
batch's ``(hd, stable_zeros, charge)`` arrays and re-concatenated and refitted
the full history after each batch, making the convergence loop O(batches²) in
work and allocation.  :class:`ClassAccumulator` replaces that with running
per-class statistics: one cell per ``(hd, stable_zeros)`` switching-event
subclass holding the sample count, charge sum, charge sum-of-squares and
running absolute deviations.  Updating with a batch is O(batch + m²) and a
convergence check is O(m), independent of how many patterns have been
consumed.

Accumulators are *mergeable* (`merge`), which is what lets parallel
characterization workers each process a slice of the stream and ship their
accumulator back to the parent for a single combined fit, and they are
JSON-serializable (`to_dict` / `from_dict`) so the persistent model cache can
store them next to the fitted coefficients.

Exactness: sample counts, per-class charge sums — and therefore the fitted
coefficients ``p_i`` / ``p_{i,z}`` — match a concatenate-and-refit over the
same stream exactly up to float addition order (≪ 1e-12 relative).  The
per-class absolute deviations ``ε`` are accumulated against the *running*
class mean at update time instead of the final mean (a mean absolute
deviation cannot be reduced from moments), so they converge to — but are not
bitwise equal to — the two-pass values; they remain deterministic for a fixed
stream and batch schedule.
"""

from __future__ import annotations

import base64
from typing import Any, Dict

import numpy as np

from ..obs.events import EVENTS
from ..obs.tracing import span


class ClassAccumulator:
    """Running ``(hd, stable_zeros)`` subclass statistics of a charge stream.

    Args:
        width: Module input bit count ``m``; valid cells are ``(i, z)`` with
            ``0 <= i <= m`` and ``0 <= z <= m - i``.

    Attributes:
        counts: ``[m+1, m+1]`` per-cell sample counts.
        sums: Per-cell charge sums (coefficients are ``sums / counts``).
        sumsq: Per-cell charge sums-of-squares (for standard errors).
        abs_dev: Per-cell running absolute deviation sums (enhanced ε).
        abs_dev_hd: ``[m+1]`` running absolute deviation sums against the
            Hd-marginal mean (basic-model ε).
    """

    __slots__ = ("width", "counts", "sums", "sumsq", "abs_dev", "abs_dev_hd")

    def __init__(self, width: int):
        if width < 1:
            raise ValueError("width must be >= 1")
        self.width = int(width)
        cells = self.width + 1
        self.counts = np.zeros((cells, cells), dtype=np.int64)
        self.sums = np.zeros((cells, cells), dtype=np.float64)
        self.sumsq = np.zeros((cells, cells), dtype=np.float64)
        self.abs_dev = np.zeros((cells, cells), dtype=np.float64)
        self.abs_dev_hd = np.zeros(cells, dtype=np.float64)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def update(
        self,
        hd: np.ndarray,
        stable_zeros: np.ndarray,
        charge: np.ndarray,
    ) -> "ClassAccumulator":
        """Fold one batch of classified transitions into the statistics.

        Args:
            hd: Per-cycle Hamming distances.
            stable_zeros: Per-cycle stable-zero counts (same length).
            charge: Per-cycle reference charges (same length).

        Returns:
            ``self`` (for chaining).
        """
        hd = np.asarray(hd, dtype=np.int64)
        stable_zeros = np.asarray(stable_zeros, dtype=np.int64)
        charge = np.asarray(charge, dtype=np.float64)
        if not (hd.shape == stable_zeros.shape == charge.shape):
            raise ValueError("hd, stable_zeros and charge must align")
        if hd.size == 0:
            return self
        EVENTS.fit_updates.inc()
        EVENTS.fit_samples.inc(int(hd.size))
        with span("fit.update", samples=int(hd.size)):
            return self._update(hd, stable_zeros, charge)

    def _update(
        self,
        hd: np.ndarray,
        stable_zeros: np.ndarray,
        charge: np.ndarray,
    ) -> "ClassAccumulator":
        if hd.min() < 0 or hd.max() > self.width:
            raise ValueError(f"Hd values out of range 0..{self.width}")
        if stable_zeros.min() < 0 or np.any(hd + stable_zeros > self.width):
            raise ValueError("hd + stable_zeros exceeds the bit width")
        cells = self.width + 1
        flat = hd * cells + stable_zeros
        size = cells * cells
        self.counts += np.bincount(flat, minlength=size).reshape(cells, cells)
        self.sums += np.bincount(
            flat, weights=charge, minlength=size
        ).reshape(cells, cells)
        self.sumsq += np.bincount(
            flat, weights=charge * charge, minlength=size
        ).reshape(cells, cells)
        # Deviations against the just-updated running means (see module
        # docstring for the exactness contract).
        with np.errstate(invalid="ignore", divide="ignore"):
            cell_mean = np.where(
                self.counts > 0, self.sums / np.maximum(self.counts, 1), 0.0
            )
            hd_counts = self.counts.sum(axis=1)
            hd_mean = np.where(
                hd_counts > 0, self.sums.sum(axis=1) / np.maximum(hd_counts, 1), 0.0
            )
        self.abs_dev += np.bincount(
            flat,
            weights=np.abs(charge - cell_mean[hd, stable_zeros]),
            minlength=size,
        ).reshape(cells, cells)
        self.abs_dev_hd += np.bincount(
            hd, weights=np.abs(charge - hd_mean[hd]), minlength=cells
        )
        return self

    def merge(self, other: "ClassAccumulator") -> "ClassAccumulator":
        """Fold another accumulator (e.g. from a worker) into this one."""
        if other.width != self.width:
            raise ValueError(
                f"cannot merge accumulators of widths "
                f"{self.width} and {other.width}"
            )
        self.counts += other.counts
        self.sums += other.sums
        self.sumsq += other.sumsq
        self.abs_dev += other.abs_dev
        self.abs_dev_hd += other.abs_dev_hd
        return self

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def n_samples(self) -> int:
        """Total transitions accumulated so far."""
        return int(self.counts.sum())

    @property
    def average_charge(self) -> float:
        """Mean charge over everything accumulated (0 when empty)."""
        n = self.n_samples
        return float(self.sums.sum() / n) if n else 0.0

    @property
    def hd_counts(self) -> np.ndarray:
        """Per-Hd-class sample counts (zeros axis marginalized)."""
        return self.counts.sum(axis=1)

    @property
    def hd_sums(self) -> np.ndarray:
        """Per-Hd-class charge sums (zeros axis marginalized)."""
        return self.sums.sum(axis=1)

    def hd_means(self) -> np.ndarray:
        """Per-Hd-class mean charge; NaN for classes never observed.

        This is the O(m) ingredient of the characterization convergence
        check: observed entries equal the coefficients a full refit would
        produce (interpolated entries are irrelevant to the check).
        """
        counts = self.hd_counts
        with np.errstate(invalid="ignore"):
            return np.where(
                counts > 0, self.hd_sums / np.maximum(counts, 1), np.nan
            )

    # ------------------------------------------------------------------
    # Serialization (for the persistent cache / worker transport)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible payload; inverse of :meth:`from_dict`."""
        return {
            "width": self.width,
            "counts": self.counts.tolist(),
            "sums": self.sums.tolist(),
            "sumsq": self.sumsq.tolist(),
            "abs_dev": self.abs_dev.tolist(),
            "abs_dev_hd": self.abs_dev_hd.tolist(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ClassAccumulator":
        acc = cls(int(data["width"]))
        acc.counts = np.asarray(data["counts"], dtype=np.int64)
        acc.sums = np.asarray(data["sums"], dtype=np.float64)
        acc.sumsq = np.asarray(data["sumsq"], dtype=np.float64)
        acc.abs_dev = np.asarray(data["abs_dev"], dtype=np.float64)
        acc.abs_dev_hd = np.asarray(data["abs_dev_hd"], dtype=np.float64)
        return acc

    #: Array fields in serialization order, with their fixed dtypes.
    _ARRAY_FIELDS = (
        ("counts", np.int64),
        ("sums", np.float64),
        ("sumsq", np.float64),
        ("abs_dev", np.float64),
        ("abs_dev_hd", np.float64),
    )

    def snapshot(self) -> Dict[str, Any]:
        """Bit-exact JSON-compatible state capture; inverse of :meth:`restore`.

        Unlike :meth:`to_dict` (which goes through ``tolist`` and decimal
        repr), the arrays are captured as base64 of their raw little-endian
        bytes, so every float — signed zeros, subnormals, the exact
        summation residue — round-trips bitwise.  This is what lets a
        streaming estimation session survive a serve-worker drain without
        perturbing its running estimate by even one ulp.
        """
        return {
            "version": 1,
            "width": self.width,
            "arrays": {
                name: base64.b64encode(
                    np.ascontiguousarray(
                        getattr(self, name), dtype=dtype
                    ).tobytes()
                ).decode("ascii")
                for name, dtype in self._ARRAY_FIELDS
            },
        }

    @classmethod
    def restore(cls, data: Dict[str, Any]) -> "ClassAccumulator":
        """Rebuild an accumulator captured by :meth:`snapshot`, bit-exactly."""
        acc = cls(int(data["width"]))
        cells = acc.width + 1
        shapes = {
            "counts": (cells, cells),
            "sums": (cells, cells),
            "sumsq": (cells, cells),
            "abs_dev": (cells, cells),
            "abs_dev_hd": (cells,),
        }
        for name, dtype in cls._ARRAY_FIELDS:
            raw = base64.b64decode(data["arrays"][name])
            array = np.frombuffer(raw, dtype=dtype).reshape(
                shapes[name]
            ).copy()
            setattr(acc, name, array)
        return acc

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ClassAccumulator):
            return NotImplemented
        return self.width == other.width and all(
            np.array_equal(getattr(self, name), getattr(other, name))
            for name in ("counts", "sums", "sumsq", "abs_dev", "abs_dev_hd")
        )

    def __repr__(self) -> str:
        return (
            f"ClassAccumulator(width={self.width}, "
            f"n_samples={self.n_samples})"
        )
