"""Switching-event classification (Section 3).

Every consecutive input-vector pair is assigned to a switching event class:
by Hamming distance alone for the basic model (``E_i``), or by
(Hamming distance, stable-zero count) for the enhanced model
(``E_{i,z}``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..obs.events import EVENTS
from ..stats.bitstats import (
    hamming_distances,
    stable_one_counts,
    stable_zero_counts,
)


@dataclass(frozen=True)
class TransitionEvents:
    """Classified switching events of an input bit matrix.

    Attributes:
        width: Number of module input bits ``m``.
        hd: Per-cycle Hamming distance (length ``n - 1``).
        stable_zeros: Per-cycle count of bits stable at 0.
        stable_ones: Per-cycle count of bits stable at 1.
    """

    width: int
    hd: np.ndarray
    stable_zeros: np.ndarray
    stable_ones: np.ndarray

    @property
    def n_cycles(self) -> int:
        return len(self.hd)

    def class_counts(self) -> np.ndarray:
        """Occurrences of each Hd class ``E_0 .. E_m``."""
        return np.bincount(self.hd, minlength=self.width + 1)


def classify_transitions(bits: np.ndarray) -> TransitionEvents:
    """Classify all consecutive transitions of a bit matrix.

    Args:
        bits: ``[n, m]`` boolean input-vector matrix (n >= 2).
    """
    bits = np.asarray(bits, dtype=bool)
    events = TransitionEvents(
        width=bits.shape[1],
        hd=hamming_distances(bits),
        stable_zeros=stable_zero_counts(bits),
        stable_ones=stable_one_counts(bits),
    )
    EVENTS.classify_passes.inc()
    EVENTS.classify_cycles.inc(events.n_cycles)
    return events
