"""The enhanced Hd-model (Section 3, Eq. 3).

Switching-event classes are split by the number of *stable-zero* bits:
class ``E_{i,z}`` holds transitions with Hamming distance ``i`` and ``z``
bits stable at 0.  For Hd ``i`` the stable-zero count ranges ``0..m-i``, so
the full model has ``M = (m² + m) / 2 + ...`` coefficients; the optional
``cluster_size`` groups neighbouring zero counts to bound the parameter
count, as suggested at the end of Section 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from .hd_model import HdPowerModel


@dataclass(frozen=True)
class EnhancedHdModel:
    """Hd model with stable-zero-count sub-classes.

    Attributes:
        name: Module label.
        width: Module input bit count ``m``.
        cluster_size: Zero-count granularity; 1 = full resolution (the
            paper's Eq. 3), larger values cluster zero counts in buckets.
        coefficients: Map ``(hd, zero_bucket) -> p``.
        counts: Map ``(hd, zero_bucket) -> characterization samples``.
        deviations: Map ``(hd, zero_bucket) -> ε`` (Eq. 5 per subclass).
        fallback: Basic model used for subclasses never observed.
    """

    name: str
    width: int
    cluster_size: int
    coefficients: Dict[Tuple[int, int], float]
    counts: Dict[Tuple[int, int], int]
    deviations: Dict[Tuple[int, int], float]
    fallback: HdPowerModel

    # ------------------------------------------------------------------
    @classmethod
    def fit(
        cls,
        hd: np.ndarray,
        stable_zeros: np.ndarray,
        charge: np.ndarray,
        width: int,
        cluster_size: int = 1,
        name: str = "",
    ) -> "EnhancedHdModel":
        """Fit subclass coefficients from a characterization trace.

        Args:
            hd: Per-cycle Hamming distances.
            stable_zeros: Per-cycle stable-zero counts.
            charge: Per-cycle reference charges.
            width: Module input bit count ``m``.
            cluster_size: Zero-count bucket width (>= 1).
            name: Model label.
        """
        if cluster_size < 1:
            raise ValueError("cluster_size must be >= 1")
        hd = np.asarray(hd, dtype=np.int64)
        stable_zeros = np.asarray(stable_zeros, dtype=np.int64)
        charge = np.asarray(charge, dtype=np.float64)
        if not (hd.shape == stable_zeros.shape == charge.shape):
            raise ValueError("hd, stable_zeros and charge must align")
        if np.any(hd + stable_zeros > width):
            raise ValueError("hd + stable_zeros exceeds the bit width")
        fallback = HdPowerModel.fit(hd, charge, width, name=name)
        buckets = stable_zeros // cluster_size
        coefficients: Dict[Tuple[int, int], float] = {}
        counts: Dict[Tuple[int, int], int] = {}
        deviations: Dict[Tuple[int, int], float] = {}
        keys = np.stack([hd, buckets], axis=1)
        order = np.lexsort((buckets, hd))
        sorted_keys = keys[order]
        sorted_charge = charge[order]
        boundaries = np.nonzero(np.any(np.diff(sorted_keys, axis=0) != 0, axis=1))[0] + 1
        for group in np.split(np.arange(len(order)), boundaries):
            i, z = (int(v) for v in sorted_keys[group[0]])
            values = sorted_charge[group]
            p = float(values.mean())
            coefficients[(i, z)] = p
            counts[(i, z)] = int(len(values))
            if p > 0:
                deviations[(i, z)] = float(np.abs((values - p) / p).mean())
            else:
                deviations[(i, z)] = 0.0
        return cls(
            name=name,
            width=width,
            cluster_size=cluster_size,
            coefficients=coefficients,
            counts=counts,
            deviations=deviations,
            fallback=fallback,
        )

    @classmethod
    def from_accumulator(
        cls,
        accumulator,
        cluster_size: int = 1,
        name: str = "",
    ) -> "EnhancedHdModel":
        """Fit subclass coefficients from accumulated class statistics.

        The incremental counterpart of :meth:`fit` (see
        :meth:`HdPowerModel.from_accumulator`): subclass counts are exact
        and the coefficients match a full refit up to float summation
        order.  Zero-count clustering happens here, at finalization — the
        accumulator always stores full-resolution ``(hd, stable_zeros)``
        cells, so one accumulator can serve any ``cluster_size``.

        Args:
            accumulator: A :class:`~repro.core.accumulator.ClassAccumulator`.
            cluster_size: Zero-count bucket width (>= 1).
            name: Model label.
        """
        if cluster_size < 1:
            raise ValueError("cluster_size must be >= 1")
        fallback = HdPowerModel.from_accumulator(accumulator, name=name)
        coefficients: Dict[Tuple[int, int], float] = {}
        counts: Dict[Tuple[int, int], int] = {}
        deviations: Dict[Tuple[int, int], float] = {}
        cell_counts = accumulator.counts
        for i, z in zip(*np.nonzero(cell_counts)):
            key = (int(i), int(z) // cluster_size)
            counts[key] = counts.get(key, 0) + int(cell_counts[i, z])
            coefficients[key] = (
                coefficients.get(key, 0.0) + float(accumulator.sums[i, z])
            )
            deviations[key] = (
                deviations.get(key, 0.0) + float(accumulator.abs_dev[i, z])
            )
        for key, total in coefficients.items():
            p = total / counts[key]
            coefficients[key] = p
            deviations[key] = deviations[key] / (counts[key] * p) if p > 0 else 0.0
        return cls(
            name=name,
            width=accumulator.width,
            cluster_size=cluster_size,
            coefficients=coefficients,
            counts=counts,
            deviations=deviations,
            fallback=fallback,
        )

    # ------------------------------------------------------------------
    def predict_cycle(
        self, hd: np.ndarray, stable_zeros: np.ndarray
    ) -> np.ndarray:
        """Per-cycle charge with basic-model fallback for unseen subclasses.

        A subclass observed during characterization uses its own
        coefficient; otherwise the nearest observed zero-bucket of the same
        Hd class is used, and if the Hd class is empty the basic model's
        coefficient applies.
        """
        hd = np.asarray(hd, dtype=np.int64)
        stable_zeros = np.asarray(stable_zeros, dtype=np.int64)
        buckets = stable_zeros // self.cluster_size
        out = np.empty(len(hd), dtype=np.float64)
        cache: Dict[Tuple[int, int], float] = {}
        for j in range(len(hd)):
            key = (int(hd[j]), int(buckets[j]))
            value = cache.get(key)
            if value is None:
                value = self._lookup(*key)
                cache[key] = value
            out[j] = value
        return out

    def _lookup(self, i: int, z: int) -> float:
        direct = self.coefficients.get((i, z))
        if direct is not None:
            return direct
        same_hd = [zz for (ii, zz) in self.coefficients if ii == i]
        if same_hd:
            nearest = min(same_hd, key=lambda zz: abs(zz - z))
            return self.coefficients[(i, nearest)]
        return float(self.fallback.coefficients[i])

    def predict_average(self, hd: np.ndarray, stable_zeros: np.ndarray) -> float:
        values = self.predict_cycle(hd, stable_zeros)
        return float(values.mean()) if values.size else 0.0

    def average_from_joint(self, joint: np.ndarray) -> float:
        """Average charge given a joint (Hd, stable-zeros) pmf.

        The analytic counterpart of Section 6.3 for the *enhanced* model:
        ``P_avg = Σ_{i,k} p(Hd = i, zeros = k) · p_{i,k}`` with the usual
        nearest-subclass/basic fallback for unseen classes.  Support beyond
        the model's bit width (from width-clipped composition) folds onto
        the nearest valid class.
        """
        joint = np.asarray(joint, dtype=np.float64)
        total = 0.0
        max_index = self.width
        for i in range(joint.shape[0]):
            row = joint[i]
            nz = np.nonzero(row > 0)[0]
            if len(nz) == 0:
                continue
            hd_value = min(i, max_index)
            for k in nz:
                zeros = min(int(k), max_index - hd_value)
                total += row[k] * self._lookup(
                    hd_value, zeros // self.cluster_size
                )
        return float(total)

    # ------------------------------------------------------------------
    def coefficient_curve(self, zero_bucket: int) -> np.ndarray:
        """``p_i`` versus Hd for one fixed zero bucket (paper Fig. 2 curves).

        Entries are NaN where the subclass was never observed.
        """
        curve = np.full(self.width + 1, np.nan)
        for (i, z), p in self.coefficients.items():
            if z == zero_bucket:
                curve[i] = p
        curve[0] = 0.0
        return curve

    def max_zero_bucket(self, hd_value: int) -> int:
        """Largest possible zero bucket for a given Hd class."""
        return (self.width - hd_value) // self.cluster_size

    @property
    def n_parameters(self) -> int:
        """Number of distinct fitted subclass coefficients."""
        return len(self.coefficients)

    @property
    def n_parameters_full(self) -> int:
        """Theoretical subclass count ``(m² + m)/2 + m + 1`` at cluster 1.

        The paper's ``M = (m² + m)/2`` counts classes ``E_{i,z}`` for
        ``i = 1..m``; with clustering the count shrinks accordingly.
        """
        total = 0
        for i in range(1, self.width + 1):
            total += (self.width - i) // self.cluster_size + 1
        return total

    @property
    def total_average_deviation(self) -> float:
        """Sample-weighted mean subclass deviation (compare to basic ε)."""
        num = 0.0
        den = 0
        for key, eps in self.deviations.items():
            n = self.counts[key]
            num += eps * n
            den += n
        return num / den if den else float("nan")
