"""Estimation error metrics of Section 4.2.

* ``ε_a`` — average absolute per-cycle error of the model against the
  reference simulator;
* ``ε`` — signed error of the total (equivalently average) charge.

Cycles whose reference charge is (numerically) zero cannot enter the
relative per-cycle error; they are excluded, mirroring how a relative
error against a PowerMill trace is only defined on active cycles.
"""

from __future__ import annotations

import numpy as np


def cycle_error(
    estimated: np.ndarray, reference: np.ndarray, atol: float = 1e-12
) -> float:
    """Average absolute cycle-charge error ``ε_a`` in percent.

    Args:
        estimated: Per-cycle model charges.
        reference: Per-cycle reference charges (same length).
        atol: Reference cycles with ``|Q| <= atol`` are skipped.
    """
    estimated = np.asarray(estimated, dtype=np.float64)
    reference = np.asarray(reference, dtype=np.float64)
    if estimated.shape != reference.shape:
        raise ValueError("estimated and reference must align")
    active = np.abs(reference) > atol
    if not active.any():
        return 0.0
    ratio = np.abs(
        (estimated[active] - reference[active]) / reference[active]
    )
    return float(ratio.mean() * 100.0)


def average_error(estimated: np.ndarray, reference: np.ndarray) -> float:
    """Signed average-charge error ``ε`` in percent."""
    estimated = np.asarray(estimated, dtype=np.float64)
    reference = np.asarray(reference, dtype=np.float64)
    total_ref = reference.sum()
    if total_ref == 0.0:
        return 0.0
    return float((estimated.sum() - total_ref) / total_ref * 100.0)


def average_error_scalar(estimated: float, reference: float) -> float:
    """Signed error of two scalar average powers, in percent."""
    if reference == 0.0:
        return 0.0
    return float((estimated - reference) / reference * 100.0)
