"""JSON persistence for fitted models.

Characterization is the expensive step of the flow; these helpers let a
characterized model library be saved once and shipped with a design kit,
exactly how macro-model libraries are deployed in practice.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

import numpy as np

from .enhanced import EnhancedHdModel
from .hd_model import HdPowerModel
from .operand_model import OperandHdModel

PathLike = Union[str, Path]


def model_to_dict(model) -> Dict[str, Any]:
    """Serialize a fitted model to a JSON-compatible dict."""
    if isinstance(model, HdPowerModel):
        return {
            "type": "hd",
            "name": model.name,
            "width": model.width,
            "coefficients": model.coefficients.tolist(),
            "deviations": [
                None if np.isnan(d) else float(d) for d in model.deviations
            ],
            "counts": model.counts.tolist(),
            "standard_errors": [
                None if np.isnan(s) else float(s)
                for s in model.standard_errors
            ],
        }
    if isinstance(model, EnhancedHdModel):
        return {
            "type": "enhanced",
            "name": model.name,
            "width": model.width,
            "cluster_size": model.cluster_size,
            "coefficients": {
                f"{i},{z}": p for (i, z), p in model.coefficients.items()
            },
            "counts": {f"{i},{z}": c for (i, z), c in model.counts.items()},
            "deviations": {
                f"{i},{z}": d for (i, z), d in model.deviations.items()
            },
            "fallback": model_to_dict(model.fallback),
        }
    if isinstance(model, OperandHdModel):
        return {
            "type": "operand",
            "name": model.name,
            "operand_widths": list(model.operand_widths),
            "cluster_size": model.cluster_size,
            "coefficients": {
                ",".join(map(str, key)): p
                for key, p in model.coefficients.items()
            },
            "counts": {
                ",".join(map(str, key)): c
                for key, c in model.counts.items()
            },
            "fallback": model_to_dict(model.fallback),
        }
    raise TypeError(f"cannot serialize {type(model).__name__}")


def model_from_dict(data: Dict[str, Any]):
    """Reconstruct a model serialized by :func:`model_to_dict`."""
    kind = data.get("type")
    if kind == "hd":
        deviations = np.array(
            [np.nan if d is None else d for d in data["deviations"]]
        )
        stderr_raw = data.get("standard_errors")
        standard_errors = None
        if stderr_raw is not None:
            standard_errors = np.array(
                [np.nan if s is None else s for s in stderr_raw]
            )
        return HdPowerModel(
            name=data["name"],
            width=int(data["width"]),
            coefficients=np.asarray(data["coefficients"], dtype=np.float64),
            deviations=deviations,
            counts=np.asarray(data["counts"], dtype=np.int64),
            standard_errors=standard_errors,
        )
    if kind == "enhanced":
        def parse(key):
            i, z = key.split(",")
            return int(i), int(z)

        return EnhancedHdModel(
            name=data["name"],
            width=int(data["width"]),
            cluster_size=int(data["cluster_size"]),
            coefficients={parse(k): v for k, v in data["coefficients"].items()},
            counts={parse(k): v for k, v in data["counts"].items()},
            deviations={parse(k): v for k, v in data["deviations"].items()},
            fallback=model_from_dict(data["fallback"]),
        )
    if kind == "operand":
        def parse_tuple(key):
            return tuple(int(v) for v in key.split(","))

        return OperandHdModel(
            name=data["name"],
            operand_widths=tuple(data["operand_widths"]),
            cluster_size=int(data["cluster_size"]),
            coefficients={
                parse_tuple(k): v for k, v in data["coefficients"].items()
            },
            counts={parse_tuple(k): v for k, v in data["counts"].items()},
            fallback=model_from_dict(data["fallback"]),
        )
    raise ValueError(f"unknown model type {kind!r}")


def save_model(path: PathLike, model) -> None:
    """Write a model to a JSON file."""
    Path(path).write_text(json.dumps(model_to_dict(model), indent=2))


def load_model(path: PathLike):
    """Load a model written by :func:`save_model`."""
    return model_from_dict(json.loads(Path(path).read_text()))
