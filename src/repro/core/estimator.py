"""High-level power estimation API.

Three estimation paths, in increasing abstraction (decreasing cost):

1. **Trace-based** — classify a concrete input bit stream and apply the
   model per cycle (what Table 1/2 evaluate).
2. **Distribution-based** — apply the model to an analytic Hamming-distance
   distribution computed from word-level statistics (Section 6.3; the
   accurate fast path).
3. **Average-Hd** — interpolate the model at the scalar average Hamming
   distance (Section 6.2; the fast path the paper shows can err by ~30%
   when coefficients are non-linear and the distribution is asymmetric).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..modules.library import DatapathModule
from ..signals.streams import PatternStream, module_stimulus
from ..stats.wordstats import WordStats, word_stats
from .distribution import distribution_mean, module_hd_distribution
from .enhanced import EnhancedHdModel
from .events import classify_transitions
from .hd_model import HdPowerModel


@dataclass(frozen=True)
class EstimationResult:
    """A power estimate with its provenance.

    Attributes:
        average_charge: Estimated mean cycle charge.
        method: ``"trace"``, ``"distribution"`` or ``"average_hd"``.
        cycle_charge: Per-cycle estimates (trace method only).
        hd_distribution: The distribution used (distribution method only).
        average_hd: The scalar Hd used (average_hd method only).
    """

    average_charge: float
    method: str
    cycle_charge: Optional[np.ndarray] = None
    hd_distribution: Optional[np.ndarray] = None
    average_hd: Optional[float] = None


class PowerEstimator:
    """Applies a fitted Hd model to stimuli at several abstraction levels.

    Args:
        model: Basic Hd model of the target module instance.
        enhanced: Optional enhanced model; when present, trace-based
            estimation uses the (Hd, stable-zeros) subclasses.
    """

    def __init__(
        self,
        model: HdPowerModel,
        enhanced: Optional[EnhancedHdModel] = None,
    ):
        self.model = model
        self.enhanced = enhanced

    # ------------------------------------------------------------------
    def estimate_from_bits(self, bits: np.ndarray) -> EstimationResult:
        """Trace-based estimation over a concrete input bit matrix."""
        events = classify_transitions(bits)
        if events.width != self.model.width:
            raise ValueError(
                f"bit matrix has {events.width} inputs, model expects "
                f"{self.model.width}"
            )
        if self.enhanced is not None:
            cycle = self.enhanced.predict_cycle(events.hd, events.stable_zeros)
        else:
            cycle = self.model.predict_cycle(events.hd)
        return EstimationResult(
            average_charge=float(cycle.mean()) if cycle.size else 0.0,
            method="trace",
            cycle_charge=cycle,
        )

    def estimate_from_streams(
        self, module: DatapathModule, streams: Sequence[PatternStream]
    ) -> EstimationResult:
        """Trace-based estimation from per-operand pattern streams."""
        return self.estimate_from_bits(module_stimulus(module, streams))

    def estimate_batch_from_bits(
        self, batch: Sequence[np.ndarray]
    ) -> List[EstimationResult]:
        """Vectorized trace estimation over many independent bit matrices.

        The request matrices are concatenated row-wise and classified in
        **one** :func:`classify_transitions` call; the spurious cycle that
        classification produces at each request boundary (last row of one
        request against first row of the next) is dropped when the
        per-cycle estimates are split back out.  Because the per-cycle
        model is a pure per-class lookup, the per-cycle charges are
        *identical* to calling :meth:`estimate_from_bits` on that matrix
        alone, and the averages agree to floating-point summation order
        (the batch path uses one cumulative sum instead of per-request
        ``mean`` calls; deviation is ~1e-14, far inside the serving
        layer's 1e-9 parity contract).  This is the micro-batching fast
        path: one numpy pass instead of per-request Python overhead.
        """
        matrices = []
        for bits in batch:
            bits = np.asarray(bits, dtype=bool)
            if bits.ndim != 2 or bits.shape[0] < 2:
                raise ValueError(
                    "each batch entry needs a 2-D bit matrix with >= 2 rows"
                )
            if bits.shape[1] != self.model.width:
                raise ValueError(
                    f"bit matrix has {bits.shape[1]} inputs, model expects "
                    f"{self.model.width}"
                )
            matrices.append(bits)
        if not matrices:
            return []
        events = classify_transitions(np.concatenate(matrices, axis=0))
        if self.enhanced is not None:
            cycle = self.enhanced.predict_cycle(
                events.hd, events.stable_zeros
            )
        else:
            cycle = self.model.predict_cycle(events.hd)
        # One cumulative sum gives every request's mean in O(1): request i
        # spans cycle[start_i : start_i + n_i - 1] (the +n_i-th entry is
        # the bogus boundary cycle against the next request's first row).
        rows = np.array([bits.shape[0] for bits in matrices])
        starts = np.concatenate(([0], np.cumsum(rows)[:-1]))
        ends = starts + rows - 1
        sums = np.concatenate(([0.0], np.cumsum(cycle)))
        averages = ((sums[ends] - sums[starts]) / (rows - 1)).tolist()
        bounds = zip(starts.tolist(), ends.tolist())
        return [
            EstimationResult(
                average_charge=average,
                method="trace",
                cycle_charge=cycle[start:end],
            )
            for average, (start, end) in zip(averages, bounds)
        ]

    # ------------------------------------------------------------------
    def estimate_from_distribution(
        self, hd_distribution: np.ndarray
    ) -> EstimationResult:
        """Distribution-based estimation (Section 6.3 fast path)."""
        average = self.model.average_from_distribution(hd_distribution)
        return EstimationResult(
            average_charge=average,
            method="distribution",
            hd_distribution=np.asarray(hd_distribution, dtype=np.float64),
        )

    def estimate_from_average_hd(self, average_hd: float) -> EstimationResult:
        """Average-Hd estimation (Section 6.2 baseline)."""
        return EstimationResult(
            average_charge=self.model.interpolate(average_hd),
            method="average_hd",
            average_hd=float(average_hd),
        )

    # ------------------------------------------------------------------
    def estimate_analytic(
        self,
        module: DatapathModule,
        operand_stats: Sequence[WordStats],
        use_distribution: bool = True,
    ) -> EstimationResult:
        """Fully analytic estimation from word-level statistics.

        Builds the DBT model per operand, composes the module-level Hd
        distribution and applies the power model — no simulation anywhere.

        Args:
            module: Target module (supplies operand widths).
            operand_stats: Word statistics per operand.
            use_distribution: If False, collapse to the average-Hd baseline
                (for the Figure 6 comparison).
        """
        widths = [w for _, w in module.operand_specs]
        pmf = module_hd_distribution(operand_stats, widths)
        if use_distribution:
            return self.estimate_from_distribution(pmf)
        return self.estimate_from_average_hd(distribution_mean(pmf))

    def estimate_analytic_enhanced(
        self,
        module: DatapathModule,
        operand_stats: Sequence[WordStats],
    ) -> EstimationResult:
        """Analytic estimation through the *enhanced* model.

        Derives the joint (Hd, stable-zeros) distribution from the DBT
        model per operand — the trinomial/sign-region extension of Eq. 18 —
        and applies the enhanced coefficients.  Requires an enhanced model.
        """
        if self.enhanced is None:
            raise ValueError("no enhanced model attached to this estimator")
        from .distribution import module_joint_distribution

        widths = [w for _, w in module.operand_specs]
        joint = module_joint_distribution(operand_stats, widths)
        average = self.enhanced.average_from_joint(joint)
        return EstimationResult(
            average_charge=average,
            method="distribution",
            hd_distribution=joint.sum(axis=1),
        )

    def estimate_analytic_from_streams(
        self,
        module: DatapathModule,
        streams: Sequence[PatternStream],
        use_distribution: bool = True,
    ) -> EstimationResult:
        """Analytic estimation with statistics measured from sample streams.

        The streams are used only to extract (μ, σ², ρ) — the estimation
        itself never simulates and never looks at bit patterns, mirroring
        the paper's "word-level simulation" use case.
        """
        stats = [word_stats(s.words) for s in streams]
        return self.estimate_analytic(module, stats, use_distribution)
