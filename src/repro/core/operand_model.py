"""Per-operand Hd model — the Section-3 "word level" enhancement.

Section 3 of the paper notes the model can be enhanced "by considering word
level statistics or additional bit level information" and works out the
stable-zeros criterion.  This module implements the other natural split:
classifying a switching event by the *per-operand* Hamming distances
``(Hd_a, Hd_b, ...)`` instead of their sum.

The split matters whenever the operands play structurally different roles —
in a multiplier, toggling bits of the multiplicand excites different logic
than toggling the multiplier — and especially when their statistics are
asymmetric (a near-constant coefficient operand against an active data
operand, the common DSP case).  The basic model is kept as a fallback for
unseen class combinations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .hd_model import HdPowerModel


def operand_hamming_distances(
    bits: np.ndarray, operand_widths: Sequence[int]
) -> np.ndarray:
    """Per-cycle, per-operand Hamming distances.

    Args:
        bits: ``[n, m]`` module input bit matrix (operands concatenated in
            port order).
        operand_widths: Bit width of each operand; must sum to ``m``.

    Returns:
        ``[n - 1, n_operands]`` integer matrix.
    """
    bits = np.asarray(bits, dtype=bool)
    if bits.shape[0] < 2:
        raise ValueError("need at least 2 patterns")
    if sum(operand_widths) != bits.shape[1]:
        raise ValueError(
            f"operand widths sum to {sum(operand_widths)}, bit matrix has "
            f"{bits.shape[1]} columns"
        )
    toggles = bits[1:] != bits[:-1]
    columns = []
    offset = 0
    for width in operand_widths:
        columns.append(toggles[:, offset : offset + width].sum(axis=1))
        offset += width
    return np.stack(columns, axis=1).astype(np.int64)


@dataclass(frozen=True)
class OperandHdModel:
    """Hd model with per-operand event classes.

    Attributes:
        name: Module label.
        operand_widths: Bit width per operand.
        cluster_size: Per-operand Hd bucket width (1 = full resolution).
        coefficients: Map ``(bucket_a, bucket_b, ...) -> p``.
        counts: Characterization samples per class.
        fallback: Basic (total-Hd) model for unseen classes.
    """

    name: str
    operand_widths: Tuple[int, ...]
    cluster_size: int
    coefficients: Dict[Tuple[int, ...], float]
    counts: Dict[Tuple[int, ...], int]
    fallback: HdPowerModel

    @classmethod
    def fit(
        cls,
        operand_hd: np.ndarray,
        charge: np.ndarray,
        operand_widths: Sequence[int],
        cluster_size: int = 1,
        name: str = "",
    ) -> "OperandHdModel":
        """Fit per-operand-class coefficients from a characterization trace.

        Args:
            operand_hd: ``[n, n_operands]`` per-operand Hamming distances.
            charge: Per-cycle reference charges (length ``n``).
            operand_widths: Bit width per operand.
            cluster_size: Hd bucket width per operand (>= 1).
            name: Model label.
        """
        if cluster_size < 1:
            raise ValueError("cluster_size must be >= 1")
        operand_hd = np.asarray(operand_hd, dtype=np.int64)
        charge = np.asarray(charge, dtype=np.float64)
        if operand_hd.ndim != 2 or operand_hd.shape[0] != charge.shape[0]:
            raise ValueError("operand_hd and charge must align")
        if operand_hd.shape[1] != len(operand_widths):
            raise ValueError("operand_hd columns must match operand_widths")
        for k, width in enumerate(operand_widths):
            if operand_hd[:, k].max(initial=0) > width:
                raise ValueError(f"operand {k} Hd exceeds its width {width}")
        total_hd = operand_hd.sum(axis=1)
        fallback = HdPowerModel.fit(
            total_hd, charge, int(sum(operand_widths)), name=name
        )
        buckets = operand_hd // cluster_size
        coefficients: Dict[Tuple[int, ...], float] = {}
        counts: Dict[Tuple[int, ...], int] = {}
        order = np.lexsort(buckets.T[::-1])
        sorted_keys = buckets[order]
        sorted_charge = charge[order]
        boundaries = (
            np.nonzero(np.any(np.diff(sorted_keys, axis=0) != 0, axis=1))[0]
            + 1
        )
        for group in np.split(np.arange(len(order)), boundaries):
            key = tuple(int(v) for v in sorted_keys[group[0]])
            values = sorted_charge[group]
            coefficients[key] = float(values.mean())
            counts[key] = int(len(values))
        return cls(
            name=name,
            operand_widths=tuple(int(w) for w in operand_widths),
            cluster_size=cluster_size,
            coefficients=coefficients,
            counts=counts,
            fallback=fallback,
        )

    # ------------------------------------------------------------------
    def predict_cycle(self, operand_hd: np.ndarray) -> np.ndarray:
        """Per-cycle estimate; unseen classes fall back to the total-Hd
        model (nearest-class lookup would bias asymmetric streams)."""
        operand_hd = np.asarray(operand_hd, dtype=np.int64)
        buckets = operand_hd // self.cluster_size
        total = operand_hd.sum(axis=1)
        out = np.empty(len(operand_hd), dtype=np.float64)
        cache: Dict[Tuple[int, ...], float] = {}
        for j in range(len(operand_hd)):
            key = tuple(int(v) for v in buckets[j])
            value = cache.get(key)
            if value is None:
                direct = self.coefficients.get(key)
                if direct is None:
                    direct = float(self.fallback.coefficients[int(total[j])])
                cache[key] = direct
                value = direct
            out[j] = value
        return out

    def predict_average(self, operand_hd: np.ndarray) -> float:
        values = self.predict_cycle(operand_hd)
        return float(values.mean()) if values.size else 0.0

    @property
    def n_parameters(self) -> int:
        return len(self.coefficients)

    @property
    def n_parameters_full(self) -> int:
        """Theoretical class count ``prod(w_k / cluster + 1)``."""
        total = 1
        for width in self.operand_widths:
            total *= width // self.cluster_size + 1
        return total
