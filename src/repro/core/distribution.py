"""Analytic Hamming-distance statistics from word-level statistics
(Section 6.2 and 6.3, Eq. 11-18).

With the reduced two-region DBT model (``n_rand`` random bits, ``n_sign``
sign bits):

* the random region contributes a binomial(``n_rand``, 1/2) Hamming
  distance (Eq. 12);
* the sign region contributes an all-or-nothing two-point distribution —
  0 with probability ``1 - t_sign`` or ``n_sign`` with ``t_sign``;
* the word's distribution is their convolution, written out per region in
  Eq. 15-17 and unified in Eq. 18.

Multi-operand modules convolve the per-operand distributions (closing
remark of Section 6.3, valid for uncorrelated operand streams).
"""

from __future__ import annotations

from math import comb
from typing import Sequence

import numpy as np

from ..stats.dbt import DbtModel
from ..stats.wordstats import WordStats


def binomial_distribution(n: int, p: float = 0.5) -> np.ndarray:
    """Binomial pmf over ``0..n`` (Eq. 12 with ``p = 1/2``)."""
    if n < 0:
        raise ValueError("n must be >= 0")
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be in [0, 1]")
    k = np.arange(n + 1)
    coefficients = np.array([comb(n, int(i)) for i in k], dtype=np.float64)
    with np.errstate(divide="ignore"):
        pmf = coefficients * (p ** k) * ((1.0 - p) ** (n - k))
    return pmf


def sign_region_distribution(n_sign: int, t_sign: float) -> np.ndarray:
    """Two-point sign-region pmf over ``0..n_sign`` (Section 6.3).

    All sign bits switch together: mass ``1 - t_sign`` at 0 and ``t_sign``
    at ``n_sign``.
    """
    pmf = np.zeros(n_sign + 1)
    pmf[0] = 1.0 - t_sign
    pmf[n_sign] += t_sign
    return pmf


def hd_distribution_from_dbt(model: DbtModel) -> np.ndarray:
    """Word-level Hamming-distance distribution ``p(Hd = i)`` (Eq. 18).

    Implemented literally as the unified formula: the random-region
    binomial shifted by 0 (no sign switch, weight ``p^sign_0``) plus the
    binomial shifted by ``n_sign`` (sign switch, weight ``p^sign_{n_sign}``).

    Returns:
        pmf of length ``model.width + 1``.
    """
    m = model.width
    n_rand, n_sign, t_sign = model.n_rand, model.n_sign, model.t_sign
    p_rand = binomial_distribution(n_rand)
    pmf = np.zeros(m + 1)
    # delta_{not SS} term: i <= n_rand, weight (1 - t_sign).
    pmf[: n_rand + 1] += p_rand * (1.0 - t_sign)
    # delta_{SS} term: i >= n_sign, weight t_sign, binomial index i - n_sign.
    pmf[n_sign : n_sign + n_rand + 1] += p_rand * t_sign
    return pmf


def average_hd_from_dbt(model: DbtModel) -> float:
    """Average Hamming distance (Eq. 11, reduced two-region form)."""
    return model.average_hd()


def compose_hd_distributions(distributions: Sequence[np.ndarray]) -> np.ndarray:
    """Hd distribution of concatenated uncorrelated words (Section 6.3).

    The Hamming distance of a concatenation is the sum of the per-word
    Hamming distances, so the pmfs convolve.
    """
    if not distributions:
        raise ValueError("need at least one distribution")
    result = np.asarray(distributions[0], dtype=np.float64)
    for pmf in distributions[1:]:
        result = np.convolve(result, np.asarray(pmf, dtype=np.float64))
    return result


def module_hd_distribution(
    operand_stats: Sequence[WordStats], operand_widths: Sequence[int]
) -> np.ndarray:
    """Analytic input Hd distribution of a multi-operand module.

    Args:
        operand_stats: Word statistics per operand.
        operand_widths: Bit width per operand.

    Returns:
        pmf over ``0..sum(widths)``.
    """
    if len(operand_stats) != len(operand_widths):
        raise ValueError("stats and widths must align")
    pmfs = [
        hd_distribution_from_dbt(DbtModel.from_wordstats(stats, width))
        for stats, width in zip(operand_stats, operand_widths)
    ]
    return compose_hd_distributions(pmfs)


def distribution_mean(pmf: np.ndarray) -> float:
    """Mean of an integer-valued pmf."""
    pmf = np.asarray(pmf, dtype=np.float64)
    return float(pmf @ np.arange(len(pmf)))


# ----------------------------------------------------------------------
# Joint (Hd, stable-zeros) distribution — analytic enhanced estimation
# ----------------------------------------------------------------------
def joint_hd_stable_zeros(
    model: DbtModel, negative_prob: float | None = None
) -> np.ndarray:
    """Joint pmf of (Hamming distance, stable-zero count) for one word.

    Extends Eq. 18 to the enhanced model's event classes: with the reduced
    two-region word,

    * each **random-region** bit independently toggles (p = 1/2), stays 0
      (p = 1/4) or stays 1 (p = 1/4) — a trinomial over ``n_rand`` bits;
    * the **sign region** is stable-at-0 (positive value, probability
      ``1 - q - t_sign/2``), stable-at-1 (negative, ``q - t_sign/2``) or
      switches entirely (``t_sign``), where ``q = P(x < 0)``.

    Args:
        model: Fitted DBT model.
        negative_prob: ``P(x < 0)``; defaults to 0.5 (zero-mean signal).

    Returns:
        ``[m+1, m+1]`` matrix ``J[i, k] = p(Hd = i, zeros = k)`` summing
        to 1 with support on ``i + k <= m``.
    """
    from math import lgamma

    q = 0.5 if negative_prob is None else float(negative_prob)
    t_sign = model.t_sign
    if not 0.0 <= q <= 1.0:
        raise ValueError("negative_prob must be in [0, 1]")
    stable_neg = max(q - t_sign / 2.0, 0.0)
    stable_pos = max(1.0 - q - t_sign / 2.0, 0.0)
    total = stable_neg + stable_pos + t_sign
    stable_neg, stable_pos = stable_neg / total, stable_pos / total
    t_norm = t_sign / total

    n = model.n_rand
    m = model.width
    # Trinomial over the random region.
    rand = np.zeros((n + 1, n + 1))
    log_half, log_quarter = np.log(0.5), np.log(0.25)
    for i in range(n + 1):
        for k in range(n - i + 1):
            j = n - i - k
            log_coef = (
                lgamma(n + 1) - lgamma(i + 1) - lgamma(k + 1) - lgamma(j + 1)
            )
            rand[i, k] = np.exp(
                log_coef + i * log_half + (k + j) * log_quarter
            )
    joint = np.zeros((m + 1, m + 1))
    n_sign = model.n_sign
    # Sign region contributions: (hd, zeros) offsets and weights.
    contributions = [
        (0, n_sign, stable_pos),
        (0, 0, stable_neg),
        (n_sign, 0, t_norm),
    ]
    for dh, dz, weight in contributions:
        if weight <= 0.0:
            continue
        joint[dh : dh + n + 1, dz : dz + n + 1] += weight * rand
    return joint


def gaussian_negative_prob(mean: float, sigma: float) -> float:
    """``P(x < 0)`` for a Gaussian word-level model."""
    from math import erf, sqrt

    if sigma <= 0.0:
        return 1.0 if mean < 0 else 0.0
    return 0.5 * (1.0 - erf(mean / (sigma * sqrt(2.0))))


def compose_joint_distributions(joints: Sequence[np.ndarray]) -> np.ndarray:
    """Joint (Hd, zeros) pmf of concatenated uncorrelated words (2-D
    convolution along both axes)."""
    if not joints:
        raise ValueError("need at least one distribution")
    result = np.asarray(joints[0], dtype=np.float64)
    for joint in joints[1:]:
        joint = np.asarray(joint, dtype=np.float64)
        out = np.zeros(
            (result.shape[0] + joint.shape[0] - 1,
             result.shape[1] + joint.shape[1] - 1)
        )
        for i in range(joint.shape[0]):
            row = joint[i]
            nz = np.nonzero(row)[0]
            for k in nz:
                out[i : i + result.shape[0], k : k + result.shape[1]] += (
                    row[k] * result
                )
        result = out
    return result


def module_joint_distribution(
    operand_stats: Sequence[WordStats], operand_widths: Sequence[int]
) -> np.ndarray:
    """Analytic joint (Hd, stable-zeros) pmf of a multi-operand module."""
    if len(operand_stats) != len(operand_widths):
        raise ValueError("stats and widths must align")
    joints = []
    for stats, width in zip(operand_stats, operand_widths):
        model = DbtModel.from_wordstats(stats, width)
        q = gaussian_negative_prob(stats.mean, stats.sigma)
        joints.append(joint_hd_stable_zeros(model, q))
    return compose_joint_distributions(joints)
