"""The basic Hd power macro-model (Section 3, Eq. 2; Section 4.1, Eq. 4-5).

One coefficient ``p_i`` per Hamming-distance class ``E_i``: the cycle charge
of a transition with Hamming distance ``i`` is estimated as ``p_i``, and the
coefficients are fitted as per-class averages of characterization charges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np


def _fill_missing(values: np.ndarray) -> np.ndarray:
    """Interpolate/extrapolate NaN entries of a coefficient vector.

    Characterization with random patterns rarely exercises the extreme
    Hamming-distance classes (Hd near 0 or m); missing coefficients are
    filled by linear interpolation between observed neighbours and linear
    extrapolation at the ends, preserving the observed entries exactly.
    """
    values = values.astype(np.float64, copy=True)
    index = np.arange(len(values))
    known = ~np.isnan(values)
    if known.sum() == 0:
        raise ValueError("no observed coefficient classes at all")
    if known.sum() == 1:
        values[~known] = values[known][0]
        return values
    xk, yk = index[known], values[known]
    inside = (index >= xk[0]) & (index <= xk[-1])
    values[~known & inside] = np.interp(index[~known & inside], xk, yk)
    # Linear extrapolation from the two outermost observed points.
    if (~known & (index < xk[0])).any():
        slope = (yk[1] - yk[0]) / (xk[1] - xk[0])
        left = index[~known & (index < xk[0])]
        values[left] = np.maximum(yk[0] + slope * (left - xk[0]), 0.0)
    if (~known & (index > xk[-1])).any():
        slope = (yk[-1] - yk[-2]) / (xk[-1] - xk[-2])
        right = index[~known & (index > xk[-1])]
        values[right] = np.maximum(yk[-1] + slope * (right - xk[-1]), 0.0)
    return values


@dataclass(frozen=True)
class HdPowerModel:
    """Basic Hamming-distance power macro-model of one module instance.

    Attributes:
        name: Module label (e.g. ``"csa_multiplier_8x8"``).
        width: Number of module input bits ``m``; valid Hd classes are
            ``0..m`` (the paper indexes ``E_1..E_m``; ``E_0`` — no input
            change — has charge 0 by definition and is stored explicitly).
        coefficients: ``p_i`` for ``i = 0..m`` (normalized charge units).
        deviations: Per-class average absolute deviation ``ε_i`` (Eq. 5);
            NaN for classes never observed during characterization.
        counts: Characterization sample count per class.
        standard_errors: Standard error of each ``p_i``
            (``σ_i / sqrt(n_i)``); NaN for unobserved or single-sample
            classes.  Quantifies characterization confidence beyond the
            paper's ε_i.
    """

    name: str
    width: int
    coefficients: np.ndarray
    deviations: np.ndarray = field(default=None)  # type: ignore[assignment]
    counts: np.ndarray = field(default=None)  # type: ignore[assignment]
    standard_errors: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self):
        coefficients = np.asarray(self.coefficients, dtype=np.float64)
        if coefficients.shape != (self.width + 1,):
            raise ValueError(
                f"need {self.width + 1} coefficients, got {coefficients.shape}"
            )
        object.__setattr__(self, "coefficients", coefficients)
        if self.deviations is None:
            object.__setattr__(
                self, "deviations", np.full(self.width + 1, np.nan)
            )
        if self.counts is None:
            object.__setattr__(
                self, "counts", np.zeros(self.width + 1, dtype=np.int64)
            )
        if self.standard_errors is None:
            object.__setattr__(
                self, "standard_errors", np.full(self.width + 1, np.nan)
            )

    # ------------------------------------------------------------------
    # Fitting (Eq. 4 and Eq. 5)
    # ------------------------------------------------------------------
    @classmethod
    def fit(
        cls,
        hd: np.ndarray,
        charge: np.ndarray,
        width: int,
        name: str = "",
    ) -> "HdPowerModel":
        """Fit coefficients from a characterization trace.

        Args:
            hd: Per-cycle Hamming distances.
            charge: Per-cycle reference charges (same length).
            width: Module input bit count ``m``.
            name: Model label.

        ``p_i`` is the average charge of class-``i`` transitions (Eq. 4);
        ``ε_i`` the average absolute relative deviation within the class
        (Eq. 5).  Unobserved classes are interpolated; ``p_0`` is pinned
        to 0 (a combinational module without input change consumes no
        dynamic charge).
        """
        hd = np.asarray(hd, dtype=np.int64)
        charge = np.asarray(charge, dtype=np.float64)
        if hd.shape != charge.shape:
            raise ValueError("hd and charge must have the same length")
        if hd.size == 0:
            raise ValueError("empty characterization trace")
        if hd.min() < 0 or hd.max() > width:
            raise ValueError(f"Hd values out of range 0..{width}")
        counts = np.bincount(hd, minlength=width + 1)
        sums = np.bincount(hd, weights=charge, minlength=width + 1)
        with np.errstate(invalid="ignore"):
            p = np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)
        # Per-class deviations (Eq. 5) and coefficient standard errors.
        eps = np.full(width + 1, np.nan)
        stderr = np.full(width + 1, np.nan)
        for i in np.nonzero(counts)[0]:
            pi = p[i]
            cls_charge = charge[hd == i]
            if pi > 0:
                eps[i] = float(np.abs((cls_charge - pi) / pi).mean())
            elif pi == 0:
                eps[i] = 0.0
            if len(cls_charge) > 1:
                stderr[i] = float(
                    cls_charge.std(ddof=1) / np.sqrt(len(cls_charge))
                )
        p[0] = 0.0  # E_0: no input transition, no dynamic charge
        p = _fill_missing(p)
        return cls(name=name, width=width, coefficients=p,
                   deviations=eps, counts=counts, standard_errors=stderr)

    @classmethod
    def from_accumulator(cls, accumulator, name: str = "") -> "HdPowerModel":
        """Fit from incrementally accumulated class statistics.

        The O(m) counterpart of :meth:`fit`: instead of the raw
        ``(hd, charge)`` stream it consumes a
        :class:`~repro.core.accumulator.ClassAccumulator`, so the cost is
        independent of how many patterns were characterized.  Class counts
        are exact and the coefficients match :meth:`fit` on the same stream
        up to float summation order (≪ 1e-12 relative); the per-class
        deviations ``ε_i`` use the accumulator's running-mean absolute
        deviations (see the accumulator module docstring).

        Args:
            accumulator: Statistics gathered with
                :meth:`ClassAccumulator.update` (or merged from workers).
            name: Model label.
        """
        if accumulator.n_samples == 0:
            raise ValueError("empty characterization trace")
        width = accumulator.width
        counts = accumulator.hd_counts
        sums = accumulator.hd_sums
        sumsq = accumulator.sumsq.sum(axis=1)
        with np.errstate(invalid="ignore"):
            p = np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)
        eps = np.full(width + 1, np.nan)
        stderr = np.full(width + 1, np.nan)
        observed = np.nonzero(counts)[0]
        for i in observed:
            pi = p[i]
            if pi > 0:
                eps[i] = float(
                    accumulator.abs_dev_hd[i] / (counts[i] * pi)
                )
            elif pi == 0:
                eps[i] = 0.0
            if counts[i] > 1:
                # Unbiased variance from the sum of squares, clamped at 0
                # against cancellation noise.
                var = max(
                    (sumsq[i] - sums[i] * sums[i] / counts[i])
                    / (counts[i] - 1),
                    0.0,
                )
                stderr[i] = float(np.sqrt(var / counts[i]))
        p[0] = 0.0
        p = _fill_missing(p)
        return cls(name=name, width=width, coefficients=p,
                   deviations=eps, counts=counts, standard_errors=stderr)

    # ------------------------------------------------------------------
    # Prediction (Eq. 2)
    # ------------------------------------------------------------------
    def predict_cycle(self, hd: np.ndarray) -> np.ndarray:
        """Per-cycle charge estimate ``Q[j] = p_{Hd[j]}``."""
        hd = np.asarray(hd, dtype=np.int64)
        if hd.size and (hd.min() < 0 or hd.max() > self.width):
            raise ValueError(f"Hd values out of range 0..{self.width}")
        return self.coefficients[hd]

    def predict_average(self, hd: np.ndarray) -> float:
        """Average charge over a Hamming-distance sequence."""
        values = self.predict_cycle(hd)
        return float(values.mean()) if values.size else 0.0

    def interpolate(self, hd_value: float, method: str = "linear") -> float:
        """Charge for a real-valued Hamming distance (Section 6.2).

        ``Hd^avg`` from the data model is a real number, so the integer
        coefficients are interpolated — the paper's "standard interpolation
        techniques".

        Args:
            hd_value: Real-valued Hamming distance (clipped to ``[0, m]``).
            method: ``"linear"`` (default) or ``"pchip"`` — a monotone
                cubic that respects the curvature of convex coefficient
                curves (requires scipy).
        """
        x = float(np.clip(hd_value, 0.0, self.width))
        grid = np.arange(self.width + 1)
        if method == "linear":
            return float(np.interp(x, grid, self.coefficients))
        if method == "pchip":
            from scipy.interpolate import PchipInterpolator

            return float(PchipInterpolator(grid, self.coefficients)(x))
        raise ValueError(f"unknown interpolation method {method!r}")

    def average_from_distribution(self, distribution: np.ndarray) -> float:
        """Average charge given a Hamming-distance distribution (Section 6.2).

        ``P_avg = Σ_i p(Hd = i) · p_i`` — the paper's Figure 6 "field III"
        summation.
        """
        distribution = np.asarray(distribution, dtype=np.float64)
        if distribution.shape != (self.width + 1,):
            raise ValueError(
                f"distribution must have length {self.width + 1}, "
                f"got {distribution.shape}"
            )
        return float(distribution @ self.coefficients)

    # ------------------------------------------------------------------
    @property
    def total_average_deviation(self) -> float:
        """``ε = (1/m) Σ ε_i`` over observed classes (Section 4.1)."""
        observed = self.deviations[~np.isnan(self.deviations)]
        return float(observed.mean()) if observed.size else float("nan")

    @property
    def n_parameters(self) -> int:
        """Number of model coefficients (``m``; ``p_0`` is pinned)."""
        return self.width
