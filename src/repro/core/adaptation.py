"""Adaptive LMS coefficient adaptation (Bogliolo et al. [4]).

Section 4.2 proposes "coefficient adaptation techniques" as the remedy when
input statistics drift far from the characterization statistics (e.g. the
binary-counter stream).  This module implements the normalized LMS scheme of
reference [4] specialized to the Hd model: the activator vector Δ of Eq. 2 is
one-hot (exactly one event class fires per cycle), so the normalized update
touches only the active coefficient:

    p_i  <-  p_i + μ (Q_ref - p_i)      when class i fired.

Given occasional reference charges (e.g. from sporadic low-level
simulations), the model tracks the new statistics online.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from .hd_model import HdPowerModel


@dataclass
class AdaptiveHdModel:
    """An Hd model whose coefficients adapt online with normalized LMS.

    Attributes:
        base: The initial (characterized) model; never mutated.
        learning_rate: LMS step size μ in (0, 1].
        coefficients: Current adapted coefficient vector.
        updates: Number of update steps applied per class.
    """

    base: HdPowerModel
    learning_rate: float = 0.1
    coefficients: np.ndarray = field(init=False)
    updates: np.ndarray = field(init=False)

    def __post_init__(self):
        if not 0.0 < self.learning_rate <= 1.0:
            raise ValueError("learning_rate must be in (0, 1]")
        self.coefficients = self.base.coefficients.copy()
        self.updates = np.zeros(self.base.width + 1, dtype=np.int64)

    @property
    def width(self) -> int:
        return self.base.width

    # ------------------------------------------------------------------
    def predict_cycle(self, hd: np.ndarray) -> np.ndarray:
        """Per-cycle estimate with the current (adapted) coefficients."""
        hd = np.asarray(hd, dtype=np.int64)
        return self.coefficients[hd]

    def observe(self, hd: int, reference_charge: float) -> float:
        """One LMS step from an observed (class, reference charge) pair.

        Returns:
            The a-priori error ``Q_ref - p_i`` before the update.
        """
        if not 0 <= hd <= self.width:
            raise ValueError(f"Hd {hd} out of range 0..{self.width}")
        error = float(reference_charge) - float(self.coefficients[hd])
        if hd > 0:  # p_0 stays pinned at 0
            self.coefficients[hd] += self.learning_rate * error
            self.updates[hd] += 1
        return error

    def observe_trace(
        self, hd: np.ndarray, reference_charge: np.ndarray
    ) -> np.ndarray:
        """Sequential LMS over a trace; returns the a-priori error series."""
        hd = np.asarray(hd, dtype=np.int64)
        reference_charge = np.asarray(reference_charge, dtype=np.float64)
        if hd.shape != reference_charge.shape:
            raise ValueError("hd and reference_charge must align")
        errors = np.empty(len(hd), dtype=np.float64)
        for j in range(len(hd)):
            errors[j] = self.observe(int(hd[j]), float(reference_charge[j]))
        return errors

    # ------------------------------------------------------------------
    def snapshot(self) -> HdPowerModel:
        """Freeze the adapted coefficients into a plain :class:`HdPowerModel`."""
        return HdPowerModel(
            name=f"{self.base.name}(adapted)",
            width=self.width,
            coefficients=self.coefficients.copy(),
            deviations=self.base.deviations.copy(),
            counts=self.updates.copy(),
        )

    def drift(self) -> float:
        """Mean relative coefficient movement away from the base model."""
        base = self.base.coefficients[1:]
        current = self.coefficients[1:]
        denom = np.where(np.abs(base) > 0, np.abs(base), 1.0)
        return float(np.mean(np.abs(current - base) / denom))
