"""Model characterization (Section 4.1).

A module prototype is stimulated with random patterns, the reference power
simulator provides per-transition charges, and the model coefficients are
per-class averages (Eq. 4).  Characterization proceeds in batches and is
"finished after the coefficient values have converged": after each batch the
cumulative coefficients are refitted and the maximum relative change over
well-populated classes is compared against a tolerance.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from .._compat import pop_renamed_kwarg
from ..circuit.power import PowerSimulator
from ..modules.library import DatapathModule
from ..obs.events import EVENTS
from ..obs.tracing import span
from .accumulator import ClassAccumulator
from .enhanced import EnhancedHdModel
from .events import classify_transitions
from .hd_model import HdPowerModel

#: Semantic version tag of the characterization algorithm + stimulus
#: generators.  Bump whenever a change alters characterization results for
#: an unchanged configuration — the persistent model cache
#: (:mod:`repro.runtime.cache`) keys on it, so bumping invalidates every
#: stale cache entry at once.
CHARACTERIZATION_VERSION = "2"


@dataclass
class CharacterizationResult:
    """Outcome of a characterization run.

    Attributes:
        model: The fitted basic Hd model.
        enhanced: The fitted enhanced model (if requested).
        n_patterns: Characterization patterns consumed.
        converged: Whether the convergence criterion was met before the
            pattern budget ran out.
        history: Max relative coefficient change after each batch.
        average_charge: Mean reference cycle charge of the run.
        convergence_reason: Why the loop stopped — ``"converged"``,
            ``"budget_exhausted"`` (populated classes existed but never
            settled below the tolerance) or ``"no_populated_classes"``
            (no class ever reached ``min_class_count`` samples, e.g. a
            module too wide for the pattern budget; the convergence check
            then never had anything to compare).
        accumulator: The incremental class statistics the models were
            fitted from; mergeable across runs and serializable for the
            persistent cache.
    """

    model: HdPowerModel
    enhanced: Optional[EnhancedHdModel]
    n_patterns: int
    converged: bool
    history: List[float] = field(default_factory=list)
    average_charge: float = 0.0
    convergence_reason: str = "converged"
    accumulator: Optional[ClassAccumulator] = field(default=None, repr=False)


def random_input_bits(
    n_patterns: int, width: int, seed: int = 0
) -> np.ndarray:
    """Uniform random module input vectors (the characterization stream)."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, 2, size=(n_patterns, width), dtype=np.int8).astype(bool)


def uniform_hd_input_bits(
    n_patterns: int, width: int, seed: int = 0
) -> np.ndarray:
    """Hd-stratified random walk: every event class converges equally fast.

    Uniform random patterns concentrate the Hamming distance binomially
    around ``m/2``, so for wide modules the low- and high-Hd classes are
    never observed and their coefficients would be extrapolations.  This
    stream starts from a uniform random vector and XORs, per step, a mask of
    ``h`` uniformly-chosen bit positions with ``h`` drawn uniformly from
    ``1..m``.  The marginal stays uniform and, conditioned on ``Hd = h``,
    the toggled positions are uniform — i.e. the same class-conditional
    distribution as the plain random stream — so the fitted ``p_i`` are
    unbiased while every class receives ``~n/m`` samples (importance
    sampling over event classes).
    """
    rng = np.random.default_rng(seed)
    bits = np.empty((max(n_patterns, 1), width), dtype=bool)
    current = rng.integers(0, 2, size=width).astype(bool)
    bits[0] = current
    for j in range(1, len(bits)):
        h = int(rng.integers(1, width + 1))
        positions = rng.choice(width, size=h, replace=False)
        current = current.copy()
        current[positions] = ~current[positions]
        bits[j] = current
    return bits[:n_patterns]


def corner_input_bits(
    n_patterns: int, width: int, seed: int = 0
) -> np.ndarray:
    """Structured vectors that exercise extreme stable-zero subclasses.

    Uniform random patterns almost never produce transitions where *all*
    non-switching bits are 0 (or all are 1) — exactly the subclasses the
    enhanced model's Figure-2 curves need.  This stream emits pairs
    ``(u, u ^ mask)`` whose support is a random subset ``S`` while the bits
    outside ``S`` are all-zero, all-one or random, cycling through the three
    fill styles.
    """
    rng = np.random.default_rng(seed)
    # Always generate whole (u, v) pairs: with an odd ``n_patterns`` a
    # half-open pair would otherwise leave the preallocated last row
    # all-zeros, injecting a spurious vector (and a fake high-Hd seam
    # transition) into the stream.  Rounding up and truncating keeps the
    # requested length while the dangling row is a legitimate pair head.
    size = max(n_patterns, 2)
    size += size % 2
    bits = np.zeros((size, width), dtype=bool)
    row = 0
    style = 0
    while row + 1 < len(bits):
        hd = int(rng.integers(1, width + 1))
        support = rng.choice(width, size=hd, replace=False)
        if style == 0:
            fill = np.zeros(width, dtype=bool)
        elif style == 1:
            fill = np.ones(width, dtype=bool)
        else:
            fill = rng.integers(0, 2, size=width).astype(bool)
        style = (style + 1) % 3
        u = fill.copy()
        u[support] = rng.integers(0, 2, size=hd).astype(bool)
        v = u.copy()
        v[support] = ~v[support]
        bits[row] = u
        bits[row + 1] = v
        row += 2
    return bits[:n_patterns]


def mixed_input_bits(
    n_patterns: int, width: int, seed: int = 0, corner_fraction: float = 0.5
) -> np.ndarray:
    """Hd-stratified patterns interleaved with corner pairs (enhanced stream).

    The seam transitions between blocks are ordinary transitions and simply
    land in their own event classes, so interleaving loses nothing.
    """
    n_corner = int(n_patterns * corner_fraction)
    blocks = [
        uniform_hd_input_bits(n_patterns - n_corner, width, seed),
        corner_input_bits(n_corner, width, seed + 1),
    ]
    return np.vstack([b for b in blocks if len(b)])


def characterize_module(
    module: DatapathModule,
    n_patterns: int = 4000,
    seed: int = 0,
    enhanced: bool = False,
    cluster_size: int = 1,
    batch_size: int = 1000,
    tolerance: float = 0.02,
    min_class_count: int = 20,
    glitch_aware: bool = True,
    glitch_weight: float = 1.0,
    stimulus: str = "uniform_hd",
    max_patterns: Optional[int] = None,
    engine: Optional[str] = None,
    **legacy,
) -> CharacterizationResult:
    """Characterize one module prototype with random patterns.

    Args:
        module: The module to characterize.
        n_patterns: Initial pattern budget; characterization may extend up
            to ``max_patterns`` if the coefficients have not converged.
        seed: RNG seed for the characterization stream.
        enhanced: Also fit the enhanced (stable-zeros) model.
        cluster_size: Zero-count clustering for the enhanced model.
        batch_size: Patterns per convergence-check batch.
        tolerance: Convergence threshold on the max relative coefficient
            change over classes with at least ``min_class_count`` samples.
        min_class_count: Classes with fewer samples are ignored by the
            convergence check (their coefficients are interpolated anyway).
        glitch_aware: Use the unit-delay (glitchy) reference simulator.
        glitch_weight: Charge weight of glitch toggles (see
            :class:`~repro.circuit.power.PowerSimulator`).
        stimulus: ``"uniform_hd"`` (default: Hd-stratified random walk so
            every event class converges — unbiased per class, see
            :func:`uniform_hd_input_bits`), ``"random"`` (the paper's plain
            random stream), ``"mixed"`` (uniform_hd + corner pairs,
            recommended for the enhanced model) or ``"corner"``.
        max_patterns: Hard budget; defaults to ``4 * n_patterns``.
        engine: Simulation kernel (``"auto"``, ``"bool"``, ``"packed"``
            or ``"compiled"``, see
            :class:`~repro.circuit.power.PowerSimulator`).  Engines are
            bit-identical by contract, so this never changes the fitted
            coefficients — only how fast the reference charges arrive.

    Returns:
        A :class:`CharacterizationResult`.
    """
    # PR 5 rename: ``simulation_engine=`` → ``engine=`` (warns once).
    engine = pop_renamed_kwarg(
        legacy, "simulation_engine", "engine", "characterize_module", engine
    )
    if legacy:
        raise TypeError(f"unexpected keyword arguments: {sorted(legacy)}")
    if engine is None:
        engine = "auto"
    if max_patterns is None:
        max_patterns = 4 * n_patterns
    generators = {
        "random": random_input_bits,
        "uniform_hd": uniform_hd_input_bits,
        "mixed": mixed_input_bits,
        "corner": corner_input_bits,
    }
    if stimulus not in generators:
        raise ValueError(f"unknown stimulus {stimulus!r}; use {sorted(generators)}")
    make_bits = generators[stimulus]
    width = module.input_bits
    simulator = PowerSimulator(
        module.compiled, glitch_aware=glitch_aware,
        glitch_weight=glitch_weight, engine=engine,
    )
    rng = np.random.default_rng(seed)

    # Incremental statistics: each batch folds into per-class running
    # sums, so a convergence check is O(m) and memory stays O(m²)
    # regardless of how many patterns the run consumes (the old loop
    # re-concatenated and refitted the full history after every batch).
    accumulator = ClassAccumulator(width)
    previous: Optional[np.ndarray] = None
    history: List[float] = []
    converged = False
    consumed = 0
    last_vector: Optional[np.ndarray] = None

    with span(
        "characterize", module=module.netlist.name, width=width,
        stimulus=stimulus, enhanced=enhanced,
    ):
        while consumed < max_patterns:
            batch = min(batch_size, max_patterns - consumed)
            with span("characterize.batch", rows=batch):
                bits = make_bits(
                    batch, width, seed=int(rng.integers(0, 2**31))
                )
                if last_vector is not None:
                    # Stitch batches so no transition is lost at the seam.
                    bits = np.vstack([last_vector[None, :], bits])
                last_vector = bits[-1]
                consumed += batch
                trace = simulator.simulate(bits)
                events = classify_transitions(bits)
                accumulator.update(
                    events.hd, events.stable_zeros, trace.charge
                )

            counts = accumulator.hd_counts
            current = accumulator.hd_means()
            if previous is not None:
                # Observed means equal the refit coefficients exactly, and
                # the check only ever looks at well-populated classes, so
                # the interpolated entries a full fit would add are
                # irrelevant.
                mask = counts >= min_class_count
                mask[0] = False
                if mask.any():
                    prev = previous[mask]
                    cur = current[mask]
                    denom = np.where(np.abs(prev) > 0, np.abs(prev), 1.0)
                    change = float(np.max(np.abs(cur - prev) / denom))
                else:
                    change = float("inf")
                history.append(change)
                if consumed >= n_patterns and change < tolerance:
                    converged = True
                    break
            previous = current
    EVENTS.characterize_runs.inc()
    EVENTS.characterize_patterns.inc(consumed)

    if converged:
        reason = "converged"
    else:
        populated = accumulator.hd_counts >= min_class_count
        populated[0] = False
        reason = "budget_exhausted" if populated.any() else "no_populated_classes"
        if reason == "no_populated_classes":
            warnings.warn(
                f"characterization of {module.netlist.name} consumed "
                f"{consumed} patterns without any Hd class reaching "
                f"min_class_count={min_class_count}; the convergence check "
                f"never had populated classes to compare (module width "
                f"{width} is too large for this pattern budget — raise "
                f"max_patterns or lower min_class_count)",
                stacklevel=2,
            )

    model = HdPowerModel.from_accumulator(
        accumulator, name=module.netlist.name
    )
    enhanced_model = None
    if enhanced:
        enhanced_model = EnhancedHdModel.from_accumulator(
            accumulator, cluster_size=cluster_size, name=module.netlist.name
        )
    return CharacterizationResult(
        model=model,
        enhanced=enhanced_model,
        n_patterns=consumed,
        converged=converged,
        history=history,
        average_charge=accumulator.average_charge,
        convergence_reason=reason,
        accumulator=accumulator,
    )
