"""Deprecation shims for the PR-5 API renames.

The facade normalized parameter spellings across layers
(``simulation_engine=`` → ``engine=``, ``n_jobs=`` → ``jobs=``, and
``characterize_jobs(jobs=[...])`` → ``requests=[...]``).  Old keywords
keep working through :func:`warn_once`, which emits each distinct
deprecation exactly once per process so a tight loop over a legacy
call site doesn't flood stderr.

Tests that assert the fire-exactly-once contract call
:func:`reset_deprecation_registry` first, because any earlier legacy
call in the same process would otherwise have consumed the warning.
"""

from __future__ import annotations

import threading
import warnings
from typing import Any, Dict, Optional, Set

_seen: Set[str] = set()
_lock = threading.Lock()


def warn_once(key: str, message: str) -> bool:
    """Emit ``DeprecationWarning(message)`` the first time ``key`` is seen.

    Returns True when the warning was actually emitted.
    """
    with _lock:
        if key in _seen:
            return False
        _seen.add(key)
    warnings.warn(message, DeprecationWarning, stacklevel=3)
    return True


def reset_deprecation_registry() -> None:
    """Forget which deprecations have fired (test isolation hook)."""
    with _lock:
        _seen.clear()


def pop_renamed_kwarg(
    kwargs: Dict[str, Any],
    old: str,
    new: str,
    where: str,
    current: Optional[Any] = None,
) -> Any:
    """Resolve a renamed keyword argument with a one-shot deprecation.

    Pops ``old`` from ``kwargs`` if present, warns once, and returns its
    value unless ``current`` (the value supplied under the new spelling)
    is not ``None`` — the new spelling always wins when both are given.
    """
    if old not in kwargs:
        return current
    legacy = kwargs.pop(old)
    warn_once(
        f"{where}:{old}",
        f"{where}: keyword '{old}=' is deprecated, use '{new}='",
    )
    return current if current is not None else legacy
