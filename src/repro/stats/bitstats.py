"""Bit-level statistics: signal/transition probabilities, Hamming distances.

Everything the Hd power model consumes from a stimulus is computed here:

* per-bit signal probability ``p_i`` and transition probability ``t_i``;
* the per-cycle Hamming-distance sequence over a bit matrix;
* the empirical Hamming-distance distribution (the "extracted" curve of the
  paper's Figure 9);
* per-cycle stable-zero/one counts for the enhanced model (Section 3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def signal_probabilities(bits: np.ndarray) -> np.ndarray:
    """Per-bit probability of being 1.

    Args:
        bits: ``[n, width]`` boolean matrix.
    """
    bits = np.asarray(bits, dtype=bool)
    return bits.mean(axis=0)


def transition_probabilities(bits: np.ndarray) -> np.ndarray:
    """Per-bit probability of toggling between consecutive vectors."""
    bits = np.asarray(bits, dtype=bool)
    if bits.shape[0] < 2:
        raise ValueError("need at least 2 patterns")
    return (bits[1:] != bits[:-1]).mean(axis=0)


def hamming_distances(bits: np.ndarray) -> np.ndarray:
    """Per-cycle Hamming distance of consecutive vectors (Eq. 1).

    Returns:
        Integer array of length ``n - 1``.
    """
    bits = np.asarray(bits, dtype=bool)
    if bits.shape[0] < 2:
        raise ValueError("need at least 2 patterns")
    return (bits[1:] != bits[:-1]).sum(axis=1).astype(np.int64)


def stable_zero_counts(bits: np.ndarray) -> np.ndarray:
    """Per-cycle count of bits that are 0 in both consecutive vectors.

    The enhanced Hd-model's second classification criterion (Section 3).
    """
    bits = np.asarray(bits, dtype=bool)
    if bits.shape[0] < 2:
        raise ValueError("need at least 2 patterns")
    return (~bits[1:] & ~bits[:-1]).sum(axis=1).astype(np.int64)


def stable_one_counts(bits: np.ndarray) -> np.ndarray:
    """Per-cycle count of bits that are 1 in both consecutive vectors."""
    bits = np.asarray(bits, dtype=bool)
    if bits.shape[0] < 2:
        raise ValueError("need at least 2 patterns")
    return (bits[1:] & bits[:-1]).sum(axis=1).astype(np.int64)


def empirical_hd_distribution(bits: np.ndarray) -> np.ndarray:
    """Extracted Hamming-distance distribution ``p(Hd = i)``.

    Returns:
        Float array of length ``width + 1`` summing to 1.
    """
    bits = np.asarray(bits, dtype=bool)
    width = bits.shape[1]
    hd = hamming_distances(bits)
    counts = np.bincount(hd, minlength=width + 1).astype(np.float64)
    return counts / counts.sum()


@dataclass(frozen=True)
class BitStats:
    """Bundle of bit-level statistics for one bit matrix."""

    signal_prob: np.ndarray
    transition_prob: np.ndarray
    hd_distribution: np.ndarray

    @property
    def width(self) -> int:
        return len(self.signal_prob)

    @property
    def average_hd(self) -> float:
        """Average Hamming distance (equals the sum of ``transition_prob``)."""
        i = np.arange(len(self.hd_distribution))
        return float((i * self.hd_distribution).sum())


def bit_stats(bits: np.ndarray) -> BitStats:
    """Compute the full :class:`BitStats` bundle for a bit matrix."""
    return BitStats(
        signal_prob=signal_probabilities(bits),
        transition_prob=transition_probabilities(bits),
        hd_distribution=empirical_hd_distribution(bits),
    )
