"""Goodness-of-fit metrics for distribution comparisons.

Used to score the analytic Hamming-distance distribution (Eq. 18) against
extracted ones (Figure 9) and, more generally, any pmf-vs-pmf comparison in
the evaluation harness.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def _validated_pair(p: np.ndarray, q: np.ndarray):
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    if p.shape != q.shape:
        raise ValueError("distributions must have the same support")
    if np.any(p < -1e-12) or np.any(q < -1e-12):
        raise ValueError("negative probabilities")
    return np.clip(p, 0, None), np.clip(q, 0, None)


def total_variation(p: np.ndarray, q: np.ndarray) -> float:
    """Total-variation distance ``0.5 * sum |p - q|`` in [0, 1]."""
    p, q = _validated_pair(p, q)
    return 0.5 * float(np.abs(p - q).sum())


def kl_divergence(p: np.ndarray, q: np.ndarray, epsilon: float = 1e-12) -> float:
    """``KL(p || q)`` with epsilon smoothing of the reference ``q``."""
    p, q = _validated_pair(p, q)
    q = q + epsilon
    q = q / q.sum()
    mask = p > 0
    return float((p[mask] * np.log(p[mask] / q[mask])).sum())


def chi_square_statistic(
    observed_counts: np.ndarray, expected_pmf: np.ndarray,
    min_expected: float = 5.0,
) -> tuple[float, int]:
    """Pearson chi-square statistic of counts against a model pmf.

    Bins whose expected count falls below ``min_expected`` are pooled into
    their neighbour (standard practice for sparse tails).

    Returns:
        ``(statistic, degrees_of_freedom)``.
    """
    observed_counts = np.asarray(observed_counts, dtype=np.float64)
    expected_pmf = np.asarray(expected_pmf, dtype=np.float64)
    if observed_counts.shape != expected_pmf.shape:
        raise ValueError("shapes must match")
    n = observed_counts.sum()
    if n <= 0:
        raise ValueError("need at least one observation")
    expected = expected_pmf * n
    # Pool sparse bins left to right.
    obs_bins: list[float] = []
    exp_bins: list[float] = []
    acc_obs = acc_exp = 0.0
    for o, e in zip(observed_counts, expected):
        acc_obs += o
        acc_exp += e
        if acc_exp >= min_expected:
            obs_bins.append(acc_obs)
            exp_bins.append(acc_exp)
            acc_obs = acc_exp = 0.0
    if acc_exp > 0 and obs_bins:
        obs_bins[-1] += acc_obs
        exp_bins[-1] += acc_exp
    if len(obs_bins) < 2:
        raise ValueError("too few populated bins for a chi-square test")
    obs = np.asarray(obs_bins)
    exp = np.asarray(exp_bins)
    statistic = float(((obs - exp) ** 2 / exp).sum())
    return statistic, len(obs_bins) - 1


@dataclass(frozen=True)
class FitReport:
    """All three fit metrics for one comparison."""

    total_variation: float
    kl_divergence: float
    chi_square: float
    degrees_of_freedom: int


def fit_report(
    observed_counts: np.ndarray, expected_pmf: np.ndarray
) -> FitReport:
    """Score observed Hd counts against an analytic distribution."""
    observed_counts = np.asarray(observed_counts, dtype=np.float64)
    empirical = observed_counts / observed_counts.sum()
    statistic, dof = chi_square_statistic(observed_counts, expected_pmf)
    return FitReport(
        total_variation=total_variation(empirical, expected_pmf),
        kl_divergence=kl_divergence(empirical, expected_pmf),
        chi_square=statistic,
        degrees_of_freedom=dof,
    )
