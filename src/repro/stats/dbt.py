"""Landman dual-bit-type (DBT) data model (Sections 6.1 and 6.3).

A two's-complement data word splits into three bit regions (paper Fig. 5):

1. LSBs up to breakpoint ``BP0``: uncorrelated, signal/transition
   probability 1/2 regardless of word statistics;
2. MSBs from breakpoint ``BP1`` up: sign bits, which all toggle together
   with probability ``t_sign`` determined by the word-level statistics;
3. an intermediate region whose activity is linearly interpolated.

Breakpoint formulas: the random region is controlled by the *first
difference* of the stream — a bit behaves randomly iff the typical
step ``σ_d = σ sqrt(2(1-ρ))`` spans it — so ``BP0 = log2(σ_d) - 1``;
the sign region starts where the signal magnitude runs out:
``BP1 = log2(|μ| + 3σ)``.  These are the empirical Gaussian-process
equations of Landman/Rabaey [2,3] restated in difference form (as in
Ramprasad et al. [10], which the paper cites for the improved breakpoints).

``t_sign`` is the exact Gaussian sign-change probability: for a stationary
process with lag-1 correlation ρ and standardized mean h = μ/σ,
``t_sign = P(sign(x_t) != sign(x_{t+1}))``, computed by Gauss-Legendre
quadrature of the bivariate normal orthant; for h = 0 it reduces to the
classic ``arccos(ρ)/π``.

Section 6.3 then *reduces* the three regions to two: shifting both
breakpoints together by half the intermediate width preserves the average
activity, leaving ``n_rand`` random bits and ``n_sign`` sign bits with
``n_rand + n_sign = m``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from .wordstats import WordStats, word_stats

#: Gauss-Legendre order for the bivariate-normal orthant integral.
_QUADRATURE_ORDER = 200

try:
    # Exact (machine-precision) vectorized normal CDF when scipy is
    # around; both branches agree with the erf definition to < 1e-15.
    from scipy.special import ndtr as _normal_cdf
except ImportError:  # pragma: no cover - environment-dependent
    _SQRT2 = math.sqrt(2.0)
    _vec_erf = np.vectorize(math.erf, otypes=[np.float64])

    def _normal_cdf(z):
        return 0.5 * (1.0 + _vec_erf(np.asarray(z, dtype=np.float64) / _SQRT2))


@lru_cache(maxsize=4)
def _gauss_legendre(order: int):
    """Quadrature nodes/weights, computed once per order.

    ``leggauss`` solves an eigenvalue problem — rebuilding the 200-point
    rule on every call made DBT sweeps quadratic in the number of
    evaluations for no reason.
    """
    return np.polynomial.legendre.leggauss(order)


def gaussian_sign_activity(rho: float, mean_over_sigma: float = 0.0) -> float:
    """Probability that a stationary Gaussian process changes sign per step.

    Args:
        rho: Lag-1 autocorrelation in [-1, 1].
        mean_over_sigma: Standardized mean ``h = μ/σ``.

    Returns:
        ``P(sign(x_t) != sign(x_{t+1}))``; ``arccos(ρ)/π`` when ``h = 0``.
    """
    rho = float(np.clip(rho, -1.0, 1.0))
    h = float(mean_over_sigma)
    if abs(h) < 1e-12:
        return float(np.arccos(rho) / np.pi)
    if rho >= 1.0 - 1e-12:
        return 0.0
    # P(X>0, Y<=0) + P(X<=0, Y>0) with X,Y ~ N(h,1), corr rho:
    # integrate P(Y<=0 | X=x) phi(x-h) over x>0 and the mirrored term.
    nodes, weights = _gauss_legendre(_QUADRATURE_ORDER)
    # Map [-1,1] -> [0, 8+|h|] (effectively infinity for a unit normal).
    upper = 8.0 + abs(h)
    x = 0.5 * (nodes + 1.0) * upper
    w = 0.5 * upper * weights
    sq = np.sqrt(1.0 - rho * rho)

    def phi(z):
        return np.exp(-0.5 * z * z) / np.sqrt(2.0 * np.pi)

    # Term 1: X > 0, Y <= 0.
    cond1 = _normal_cdf(-(h + rho * (x - h)) / sq)
    term1 = float((phi(x - h) * cond1 * w).sum())
    # Term 2: X <= 0, Y > 0; substitute x -> -x (x > 0 domain).
    # P(Y > 0 | X = -x) = 1 - Phi(-(h + rho(-x - h)) / sq).
    cond2 = 1.0 - _normal_cdf(-(h + rho * (-x - h)) / sq)
    term2 = float((phi(-x - h) * cond2 * w).sum())
    return float(np.clip(term1 + term2, 0.0, 1.0))


@dataclass(frozen=True)
class DbtModel:
    """Dual-bit-type model of one data word.

    Attributes:
        width: Word width ``m``.
        bp0: Upper edge of the uncorrelated LSB region (real-valued).
        bp1: Lower edge of the sign region (real-valued).
        t_sign: Transition activity of the sign region.
        n_rand: Reduced random-region size (Section 6.3), integer.
        n_sign: Reduced sign-region size; ``n_rand + n_sign == width``.
    """

    width: int
    bp0: float
    bp1: float
    t_sign: float
    n_rand: int
    n_sign: int

    @classmethod
    def from_wordstats(cls, stats: WordStats, width: int) -> "DbtModel":
        """Build the model from word-level statistics (the analytic path)."""
        if width < 1:
            raise ValueError("width must be >= 1")
        sigma = stats.sigma
        if sigma <= 0.0:
            # Constant stream: no random bits, frozen sign bits.
            return cls(width=width, bp0=0.0, bp1=0.0, t_sign=0.0,
                       n_rand=0, n_sign=width)
        sigma_d = max(stats.difference_sigma, 1e-12)
        bp0 = np.log2(sigma_d) - 1.0
        bp1 = np.log2(abs(stats.mean) + 3.0 * sigma)
        bp0 = float(np.clip(bp0, 0.0, width))
        bp1 = float(np.clip(bp1, bp0, width))
        t_sign = gaussian_sign_activity(stats.rho, stats.mean / sigma)
        n_rand = int(np.clip(round(bp0 + 0.5 * (bp1 - bp0)), 0, width))
        n_sign = width - n_rand
        return cls(width=width, bp0=bp0, bp1=bp1, t_sign=t_sign,
                   n_rand=n_rand, n_sign=n_sign)

    @classmethod
    def from_words(cls, words: np.ndarray, width: int) -> "DbtModel":
        """Build the model by measuring word statistics from a sample."""
        return cls.from_wordstats(word_stats(words), width)

    @classmethod
    def from_bit_activities(cls, activities: np.ndarray) -> "DbtModel":
        """Fit the reduced two-region model to *measured* bit activities.

        The Gaussian breakpoint equations assume AR-Gaussian word
        statistics; for signals that are not (video with hard edges,
        heavy-tailed sources), the two-region structure still holds and can
        be fitted directly: choose the split ``n_rand`` and sign activity
        ``t_sign`` minimizing the squared error of the step profile
        ``[0.5] * n_rand + [t_sign] * n_sign`` against the measured per-bit
        transition probabilities.

        Args:
            activities: Per-bit transition probabilities (LSB first).
        """
        t = np.asarray(activities, dtype=np.float64)
        width = len(t)
        if width < 1:
            raise ValueError("need at least one bit activity")
        best = None
        for n_rand in range(width + 1):
            t_sign = float(t[n_rand:].mean()) if n_rand < width else 0.0
            error = float(((t[:n_rand] - 0.5) ** 2).sum())
            error += float(((t[n_rand:] - t_sign) ** 2).sum())
            # `<=` prefers the largest random region on ties (the binomial
            # description is the better-behaved one for ambiguous bits).
            if best is None or error <= best[0]:
                best = (error, n_rand, t_sign)
        _, n_rand, t_sign = best
        return cls(
            width=width,
            bp0=float(n_rand),
            bp1=float(n_rand),
            t_sign=float(np.clip(t_sign, 0.0, 1.0)),
            n_rand=n_rand,
            n_sign=width - n_rand,
        )

    # ------------------------------------------------------------------
    def bit_activities(self) -> np.ndarray:
        """Predicted per-bit transition activity (3-region form, Fig. 5).

        Bits below ``bp0`` toggle with probability 1/2, bits above ``bp1``
        with ``t_sign``, and the intermediate region interpolates linearly —
        Landman's original approximation, used here for validation against
        measured bit activities.
        """
        t = np.empty(self.width, dtype=np.float64)
        for i in range(self.width):
            position = i + 0.5
            if position <= self.bp0:
                t[i] = 0.5
            elif position >= self.bp1:
                t[i] = self.t_sign
            else:
                frac = (position - self.bp0) / max(self.bp1 - self.bp0, 1e-12)
                t[i] = 0.5 + frac * (self.t_sign - 0.5)
        return t

    def average_hd(self) -> float:
        """Average Hamming distance of the word (Eq. 11, reduced form).

        With the Section-6.3 region reduction the intermediate term is
        already folded into ``n_rand``/``n_sign``:
        ``Hd_avg = 0.5 n_rand + t_sign n_sign``.
        """
        return 0.5 * self.n_rand + self.t_sign * self.n_sign

    def average_hd_three_region(self) -> float:
        """Average Hamming distance from the unreduced 3-region model.

        ``Hd_avg = Σ_i t_i`` over the per-bit activities; agrees with
        :meth:`average_hd` up to the rounding of the region reduction.
        """
        return float(self.bit_activities().sum())
