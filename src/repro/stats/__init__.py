"""Word-level and bit-level statistics, and the Landman DBT data model."""

from .bitstats import (
    BitStats,
    bit_stats,
    empirical_hd_distribution,
    hamming_distances,
    signal_probabilities,
    stable_one_counts,
    stable_zero_counts,
    transition_probabilities,
)
from .dbt import DbtModel, gaussian_sign_activity
from .propagate import DataflowGraph, Node
from .wordstats import WordStats, word_stats

__all__ = [
    "BitStats",
    "DataflowGraph",
    "DbtModel",
    "Node",
    "WordStats",
    "bit_stats",
    "empirical_hd_distribution",
    "gaussian_sign_activity",
    "hamming_distances",
    "signal_probabilities",
    "stable_one_counts",
    "stable_zero_counts",
    "transition_probabilities",
    "word_stats",
]
