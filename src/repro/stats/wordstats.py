"""Word-level statistics: mean, variance, lag-1 autocorrelation.

These three numbers (μ, σ², ρ) are the entire word-level interface of the
Landman dual-bit-type data model (Section 6.1 of the paper): every bit-level
quantity — breakpoints, sign activity, Hamming-distance distribution — is
derived from them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class WordStats:
    """Word-level statistics of a data stream.

    Attributes:
        mean: Sample mean μ.
        variance: Sample variance σ².
        rho: Lag-1 autocorrelation coefficient ρ (of the mean-removed
            process); 0 for a constant stream.
    """

    mean: float
    variance: float
    rho: float

    @property
    def sigma(self) -> float:
        return float(np.sqrt(max(self.variance, 0.0)))

    @property
    def difference_sigma(self) -> float:
        """Standard deviation of the first difference ``x_t - x_{t-1}``.

        For a stationary process: ``σ_d = σ sqrt(2 (1 - ρ))``.  The LSBs of
        a stream behave randomly exactly up to the magnitude of this
        difference process, which is why it controls the uncorrelated-region
        breakpoint (see :mod:`repro.stats.dbt`).
        """
        return self.sigma * float(np.sqrt(max(2.0 * (1.0 - self.rho), 0.0)))

    def scaled(self, factor: float) -> "WordStats":
        """Statistics of ``factor * x`` (constant multiplication)."""
        return WordStats(
            mean=self.mean * factor,
            variance=self.variance * factor * factor,
            rho=self.rho,
        )


def word_stats(words: np.ndarray) -> WordStats:
    """Estimate :class:`WordStats` from a sample stream.

    Args:
        words: 1-D integer or float array of at least 2 samples.
    """
    x = np.asarray(words, dtype=np.float64)
    if x.ndim != 1 or x.size < 2:
        raise ValueError("need a 1-D stream of at least 2 samples")
    mean = float(x.mean())
    centered = x - mean
    variance = float(centered @ centered) / x.size
    if variance <= 0.0:
        return WordStats(mean=mean, variance=0.0, rho=0.0)
    covariance = float(centered[:-1] @ centered[1:]) / (x.size - 1)
    rho = covariance / variance
    rho = float(np.clip(rho, -1.0, 1.0))
    return WordStats(mean=mean, variance=variance, rho=rho)
