"""Word-level statistics propagation through DSP dataflow graphs.

Section 6.1 of the paper points to Landman's technique [9] (improved in
Ramprasad et al. [10]) for propagating (μ, σ², ρ) through a design so that
the data-dependent model parameters of *internal* module inputs can be
computed without simulation.

This implementation models every node as a **linear filter over the primary
inputs**: add/subtract, constant multiply and unit delay keep the graph
linear, so each node carries one impulse response per reachable source and
its word statistics follow exactly (for sources whose autocovariance is the
AR(1) extrapolation ``γ_k = σ² ρ^|k|`` — the same Gaussian-AR data model the
breakpoint equations assume).  This handles re-convergent paths through
delays (FIR filters) exactly, where naive lag-1 bookkeeping fails.

Multiplexers break linearity; a mux output is materialized as a fresh
source with mixture statistics, which matches the first-order treatment of
[10].  Distinct primary inputs are assumed uncorrelated, as in the
references.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .wordstats import WordStats


@dataclass
class Node:
    """One operator in a dataflow graph.

    Attributes:
        name: Unique node name.
        op: One of ``"input"``, ``"add"``, ``"sub"``, ``"cmul"``,
            ``"delay"``, ``"mux"``.
        inputs: Names of predecessor nodes.
        stats: Word statistics of this node's *output* stream (filled by
            :meth:`DataflowGraph.propagate`; preset for inputs).
        coefficient: Constant for ``cmul`` nodes.
        select_prob: Probability of selecting the second input for ``mux``.
        filters: Impulse response per source node name (internal).
    """

    name: str
    op: str
    inputs: Tuple[str, ...] = ()
    stats: Optional[WordStats] = None
    coefficient: float = 1.0
    select_prob: float = 0.5
    filters: Dict[str, np.ndarray] = field(default_factory=dict)


def _source_stats_moments(
    filters: Dict[str, np.ndarray], sources: Dict[str, WordStats]
) -> WordStats:
    """Exact output statistics of a linear filter bank over AR(1) sources."""
    mean = 0.0
    variance = 0.0
    cov1 = 0.0
    for name, h in filters.items():
        s = sources[name]
        mean += s.mean * float(h.sum())
        if s.variance <= 0.0:
            continue
        k = np.arange(len(h))
        lags = np.abs(k[:, None] - k[None, :])
        gamma = s.variance * np.power(s.rho, lags)
        variance += float(h @ gamma @ h)
        lags1 = np.abs(k[:, None] - k[None, :] + 1)
        gamma1 = s.variance * np.power(s.rho, lags1)
        cov1 += float(h @ gamma1 @ h)
    variance = max(variance, 0.0)
    rho = cov1 / variance if variance > 0.0 else 0.0
    return WordStats(mean=mean, variance=variance,
                     rho=float(np.clip(rho, -1.0, 1.0)))


def _merge_filters(
    a: Dict[str, np.ndarray], b: Dict[str, np.ndarray], sign: float
) -> Dict[str, np.ndarray]:
    out: Dict[str, np.ndarray] = {k: v.copy() for k, v in a.items()}
    for name, h in b.items():
        if name in out:
            n = max(len(out[name]), len(h))
            merged = np.zeros(n)
            merged[: len(out[name])] += out[name]
            merged[: len(h)] += sign * h
            out[name] = merged
        else:
            out[name] = sign * h
    return out


class DataflowGraph:
    """A small acyclic dataflow graph with statistics propagation.

    Example (2-tap moving average)::

        g = DataflowGraph()
        g.add_input("x", WordStats(0.0, 100.0, 0.9))
        g.delay("x1", "x")
        g.add("s", "x", "x1")
        g.cmul("y", "s", 0.5)
        g.propagate()
        g.stats("y")
    """

    def __init__(self):
        self._nodes: Dict[str, Node] = {}
        self._order: List[str] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _register(self, node: Node) -> str:
        if node.name in self._nodes:
            raise ValueError(f"duplicate node name {node.name!r}")
        for src in node.inputs:
            if src not in self._nodes:
                raise ValueError(
                    f"node {node.name!r} references unknown input {src!r} "
                    "(build the graph in topological order)"
                )
        self._nodes[node.name] = node
        self._order.append(node.name)
        return node.name

    def add_input(self, name: str, stats: WordStats) -> str:
        """Declare a primary input with known word statistics."""
        return self._register(Node(name, "input", stats=stats))

    def add(self, name: str, a: str, b: str) -> str:
        """``out = a + b``."""
        return self._register(Node(name, "add", (a, b)))

    def sub(self, name: str, a: str, b: str) -> str:
        """``out = a - b``."""
        return self._register(Node(name, "sub", (a, b)))

    def cmul(self, name: str, a: str, coefficient: float) -> str:
        """``out = coefficient * a``."""
        return self._register(Node(name, "cmul", (a,), coefficient=coefficient))

    def delay(self, name: str, a: str) -> str:
        """``out[t] = a[t-1]`` (unit delay register)."""
        return self._register(Node(name, "delay", (a,)))

    def mux(self, name: str, a: str, b: str, select_prob: float = 0.5) -> str:
        """Random select between two streams (prob of picking ``b``)."""
        if not 0.0 <= select_prob <= 1.0:
            raise ValueError("select_prob must be in [0, 1]")
        return self._register(Node(name, "mux", (a, b), select_prob=select_prob))

    # ------------------------------------------------------------------
    # Propagation
    # ------------------------------------------------------------------
    def propagate(self) -> None:
        """Fill in :class:`WordStats` for every non-input node."""
        sources: Dict[str, WordStats] = {}
        for name in self._order:
            node = self._nodes[name]
            if node.op == "input":
                if node.stats is None:
                    raise ValueError(f"input {name!r} has no statistics")
                node.filters = {name: np.array([1.0])}
                sources[name] = node.stats
                continue
            preds = [self._nodes[s] for s in node.inputs]
            if any(p.stats is None and p.op != "input" and not p.filters
                   for p in preds):
                raise RuntimeError("propagation order violated")
            if node.op in ("add", "sub"):
                sign = 1.0 if node.op == "add" else -1.0
                node.filters = _merge_filters(
                    preds[0].filters, preds[1].filters, sign
                )
            elif node.op == "cmul":
                node.filters = {
                    k: node.coefficient * v
                    for k, v in preds[0].filters.items()
                }
            elif node.op == "delay":
                node.filters = {
                    k: np.concatenate([[0.0], v])
                    for k, v in preds[0].filters.items()
                }
            elif node.op == "mux":
                a = _source_stats_moments(preds[0].filters, sources)
                b = _source_stats_moments(preds[1].filters, sources)
                node.stats = _mux_mixture(a, b, node.select_prob)
                # Materialize as a fresh (approximate) source.
                node.filters = {name: np.array([1.0])}
                sources[name] = node.stats
                continue
            else:
                raise ValueError(f"unknown op {node.op!r}")
            node.stats = _source_stats_moments(node.filters, sources)

    # ------------------------------------------------------------------
    # Word-level functional simulation (Section 6's "word-level simulation")
    # ------------------------------------------------------------------
    def simulate(
        self,
        inputs: Dict[str, np.ndarray],
        seed: int = 0,
        rounded: bool = True,
    ) -> Dict[str, np.ndarray]:
        """Execute the graph on concrete word streams.

        This is the fast functional path the paper contrasts with
        bit-accurate simulation: every node's word stream is produced so
        measured statistics (or Hd extraction) can be compared against the
        analytic propagation.

        Args:
            inputs: One word array per primary input (equal lengths).
            seed: RNG seed for mux select streams.
            rounded: Round ``cmul`` results to integers (fixed-point
                datapath behaviour).

        Returns:
            Map of node name to its output word stream.
        """
        rng = np.random.default_rng(seed)
        lengths = {len(v) for v in inputs.values()}
        if len(lengths) > 1:
            raise ValueError("all input streams must have equal length")
        values: Dict[str, np.ndarray] = {}
        for name in self._order:
            node = self._nodes[name]
            if node.op == "input":
                if name not in inputs:
                    raise ValueError(f"missing stream for input {name!r}")
                values[name] = np.asarray(inputs[name], dtype=np.float64)
            elif node.op == "add":
                values[name] = values[node.inputs[0]] + values[node.inputs[1]]
            elif node.op == "sub":
                values[name] = values[node.inputs[0]] - values[node.inputs[1]]
            elif node.op == "cmul":
                product = values[node.inputs[0]] * node.coefficient
                values[name] = np.rint(product) if rounded else product
            elif node.op == "delay":
                source = values[node.inputs[0]]
                values[name] = np.concatenate([[0.0], source[:-1]])
            elif node.op == "mux":
                a = values[node.inputs[0]]
                b = values[node.inputs[1]]
                select = rng.random(len(a)) < node.select_prob
                # Expose the select stream for power analysis of the mux.
                values[name + "$select"] = select.astype(np.float64)
                values[name] = np.where(select, b, a)
            else:
                raise ValueError(f"unknown op {node.op!r}")
        return values

    # ------------------------------------------------------------------
    def stats(self, name: str) -> WordStats:
        """Word statistics of a node (after :meth:`propagate`)."""
        node = self._nodes[name]
        if node.stats is None:
            raise RuntimeError("call propagate() first")
        return node.stats

    def node(self, name: str) -> Node:
        return self._nodes[name]

    def names(self) -> List[str]:
        return list(self._order)


def _mux_mixture(a: WordStats, b: WordStats, p: float) -> WordStats:
    """Mixture statistics of randomly selecting between two streams."""
    mean = (1 - p) * a.mean + p * b.mean
    second = (1 - p) * (a.variance + a.mean**2) + p * (b.variance + b.mean**2)
    variance = max(second - mean * mean, 0.0)
    if variance <= 0.0:
        return WordStats(mean, 0.0, 0.0)
    # Consecutive samples come from the same source with prob (1-p)^2 + p^2;
    # cross-source pairs contribute only mean products (independent sources).
    cov_same = (1 - p) ** 2 * a.rho * a.variance + p**2 * b.rho * b.variance
    cov_cross = (
        (1 - p) * p * (a.mean * b.mean + b.mean * a.mean)
        + (1 - p) ** 2 * a.mean**2
        + p**2 * b.mean**2
        - mean * mean
    )
    cov1 = cov_same + cov_cross
    return WordStats(mean, variance, float(np.clip(cov1 / variance, -1, 1)))
