"""Persistent content-addressed cache for characterization artifacts.

Characterization is the expensive step of the whole flow; the cache makes it
pay-once.  Every artifact — a fitted :class:`CharacterizationResult` or an
evaluation ``(events, trace)`` pair — is stored as one JSON file named by
the SHA-256 of its *complete* provenance: record type, module kind and
width, the full experiment configuration, the seed and the characterization
code-version tag.  Two consequences:

* identical configurations always map to the same file, across processes
  and machines, so re-running a benchmark suite is pure cache hits;
* any change to the configuration **or** to the characterization algorithm
  (via :data:`~repro.core.characterize.CHARACTERIZATION_VERSION`) changes
  the key, so stale entries are never served — they are simply orphaned
  and reclaimed by ``repro-power cache clear``.

The default location is ``~/.cache/repro-hd``, overridable with the
``REPRO_CACHE_DIR`` environment variable or the ``directory`` argument.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
import os
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from ..circuit.power import PowerTrace
from ..core.accumulator import ClassAccumulator
from ..obs.events import EVENTS
from ..core.characterize import (
    CHARACTERIZATION_VERSION,
    CharacterizationResult,
)
from ..core.events import TransitionEvents
from ..core.serialize import model_from_dict, model_to_dict

PathLike = Union[str, Path]

ENV_CACHE_DIR = "REPRO_CACHE_DIR"
DEFAULT_CACHE_DIR = "~/.cache/repro-hd"

#: On-disk payload format; bump when the JSON layout itself changes.
CACHE_FORMAT_VERSION = "1"

#: Per-process sequence for temp-file names.  Combined with the pid —
#: read at *call* time, never captured at import — it makes every
#: in-flight write target a distinct file, so two ``--jobs`` workers
#: storing the same key can never interleave writes to a shared temp
#: name (which could rename a half-written record into place) or steal
#: each other's temp file out from under the atomic ``replace``.
_TMP_SEQUENCE = itertools.count()


def _reset_tmp_sequence() -> None:
    """Restart the temp-name sequence in a freshly forked child.

    ``fork()`` copies the parent's counter position into every child, so
    a fleet of workers forked from one warm parent would all mint their
    next temp name from the same sequence value.  The pid component keeps
    the names unique while the pids stay alive, but a recycled pid (or a
    pid-agnostic consumer of the names) would collide — resetting per
    child keeps the sequence a genuinely per-process namespace.
    """
    global _TMP_SEQUENCE
    _TMP_SEQUENCE = itertools.count()


if hasattr(os, "register_at_fork"):  # absent on platforms without fork()
    os.register_at_fork(after_in_child=_reset_tmp_sequence)


def default_cache_dir() -> Path:
    """The cache directory honoring ``REPRO_CACHE_DIR``."""
    return Path(
        os.environ.get(ENV_CACHE_DIR, DEFAULT_CACHE_DIR)
    ).expanduser()


def _config_payload(config: Any) -> Dict[str, Any]:
    """A JSON-stable view of an experiment configuration."""
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        payload = dataclasses.asdict(config)
    elif isinstance(config, dict):
        payload = dict(config)
    else:
        raise TypeError(
            f"config must be a dataclass or dict, got {type(config).__name__}"
        )
    # The simulation engine is bit-identical by contract (parity-tested),
    # so it is pure speed provenance: keying on it would split the cache
    # between runs that produce byte-for-byte the same artifacts.  The
    # oracle self-check can only *reject* a wrong trace, never change a
    # correct one, so it is excluded for the same reason.
    payload.pop("engine", None)
    payload.pop("self_check", None)
    return payload


class ModelCache:
    """Content-addressed disk cache of characterization artifacts.

    Args:
        directory: Cache root; defaults to ``$REPRO_CACHE_DIR`` or
            ``~/.cache/repro-hd``.  Created lazily on first store.

    Attributes:
        hits: Successful loads served by this instance.
        misses: Lookups that found no entry.
        stores: Entries written by this instance.
        quarantined: Corrupt records found and moved aside (``.corrupt``)
            by this instance.  A truncated or garbled file — a crashed
            writer, a full disk, bit rot — is treated as a miss, never an
            exception, and is renamed out of the lookup path so the next
            run re-characterizes and re-stores cleanly.
    """

    def __init__(self, directory: Optional[PathLike] = None):
        self.directory = (
            Path(directory).expanduser()
            if directory is not None
            else default_cache_dir()
        )
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.quarantined = 0

    # ------------------------------------------------------------------
    # Keys
    # ------------------------------------------------------------------
    @staticmethod
    def make_key(payload: Dict[str, Any]) -> str:
        """SHA-256 over the canonical JSON form of a provenance payload."""
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def characterization_key(
        self,
        kind: str,
        width: int,
        enhanced: bool,
        config: Any,
        seed: int,
    ) -> str:
        """Key of one characterization run's full provenance."""
        return self.make_key({
            "record": "characterization",
            "kind": kind,
            "width": int(width),
            "enhanced": bool(enhanced),
            "seed": int(seed),
            "config": _config_payload(config),
            "code_version": CHARACTERIZATION_VERSION,
        })

    def trace_key(
        self,
        kind: str,
        width: int,
        data_type: str,
        config: Any,
        seed: int,
    ) -> str:
        """Key of one evaluation (events, trace) pair's provenance."""
        return self.make_key({
            "record": "trace",
            "kind": kind,
            "width": int(width),
            "data_type": data_type,
            "seed": int(seed),
            "config": _config_payload(config),
            "code_version": CHARACTERIZATION_VERSION,
        })

    # ------------------------------------------------------------------
    # Raw record I/O
    # ------------------------------------------------------------------
    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def _quarantine(self, key: str) -> None:
        """Move a corrupt record out of the lookup path (``.corrupt``)."""
        path = self._path(key)
        try:
            path.replace(path.with_suffix(".corrupt"))
        except OSError:
            # Renaming failed (e.g. permissions): best effort removal so
            # the poisoned record cannot be served again.
            path.unlink(missing_ok=True)
        self.quarantined += 1
        EVENTS.cache_quarantined.inc()

    def _demote_to_quarantined_miss(self, key: str) -> None:
        """Turn an already counted hit into a quarantined miss.

        Used by the typed loaders when a record parses as JSON (so
        :meth:`load` counted a hit) but its payload is structurally
        unusable.
        """
        self.hits -= 1
        self.misses += 1
        # The global counters are monotonic, so the earlier hit cannot be
        # retracted; record the demotion as its own outcome instead
        # (true hits = hit - demoted when aggregating).
        EVENTS.cache_lookups.inc(result="demoted")
        self._quarantine(key)

    def load(self, key: str) -> Optional[Dict[str, Any]]:
        """Fetch a raw record; counts a hit or miss.

        A record that exists but cannot be parsed — truncated write,
        binary garbage, or a non-object top level — is quarantined and
        reported as a miss rather than raised.
        """
        path = self._path(key)
        try:
            record = json.loads(path.read_text())
        except FileNotFoundError:
            self._count_miss()
            return None
        except (ValueError, UnicodeDecodeError):
            # json.JSONDecodeError is a ValueError; UnicodeDecodeError
            # covers non-text garbage.
            self._quarantine(key)
            self._count_miss()
            return None
        if not isinstance(record, dict):
            self._quarantine(key)
            self._count_miss()
            return None
        if record.get("format") != CACHE_FORMAT_VERSION:
            # Valid record of another layout generation: plain miss, the
            # file may still be readable by other tooling.
            self._count_miss()
            return None
        self.hits += 1
        EVENTS.cache_lookups.inc(result="hit")
        return record

    def _count_miss(self) -> None:
        self.misses += 1
        EVENTS.cache_lookups.inc(result="miss")

    def store(
        self, key: str, payload: Dict[str, Any], meta: Dict[str, Any]
    ) -> Path:
        """Write a record atomically (write + rename); counts a store."""
        self.directory.mkdir(parents=True, exist_ok=True)
        record = {
            "format": CACHE_FORMAT_VERSION,
            "created": time.time(),
            "meta": meta,
            "payload": payload,
        }
        path = self._path(key)
        # Unique temp name (same directory, so replace() stays atomic):
        # a shared name would let concurrent writers corrupt each other.
        tmp = path.with_name(
            f"{path.name}.{os.getpid()}.{next(_TMP_SEQUENCE)}.tmp"
        )
        try:
            tmp.write_text(json.dumps(record))
            tmp.replace(path)
        finally:
            tmp.unlink(missing_ok=True)
        self.stores += 1
        EVENTS.cache_stores.inc()
        return path

    # ------------------------------------------------------------------
    # Characterization records
    # ------------------------------------------------------------------
    def load_characterization(
        self, key: str
    ) -> Optional[CharacterizationResult]:
        record = self.load(key)
        if record is None:
            return None
        try:
            payload = record["payload"]
            accumulator = None
            if payload.get("accumulator") is not None:
                accumulator = ClassAccumulator.from_dict(
                    payload["accumulator"]
                )
            return CharacterizationResult(
                model=model_from_dict(payload["model"]),
                enhanced=(
                    model_from_dict(payload["enhanced"])
                    if payload.get("enhanced") is not None
                    else None
                ),
                n_patterns=int(payload["n_patterns"]),
                converged=bool(payload["converged"]),
                history=[float(v) for v in payload["history"]],
                average_charge=float(payload["average_charge"]),
                convergence_reason=payload.get("convergence_reason", ""),
                accumulator=accumulator,
            )
        except (KeyError, TypeError, ValueError, AttributeError):
            # Parsed as JSON but structurally wrong (e.g. a truncated
            # rewrite that still closed its braces): same treatment as
            # unparseable — quarantine and miss.
            self._demote_to_quarantined_miss(key)
            return None

    def store_characterization(
        self,
        key: str,
        result: CharacterizationResult,
        meta: Optional[Dict[str, Any]] = None,
    ) -> Path:
        payload = {
            "model": model_to_dict(result.model),
            "enhanced": (
                model_to_dict(result.enhanced)
                if result.enhanced is not None
                else None
            ),
            "n_patterns": result.n_patterns,
            "converged": result.converged,
            # JSON has no inf; histories may contain it for sparse batches.
            "history": [
                v if np.isfinite(v) else repr(v) for v in result.history
            ],
            "average_charge": result.average_charge,
            "convergence_reason": result.convergence_reason,
            "accumulator": (
                result.accumulator.to_dict()
                if result.accumulator is not None
                else None
            ),
        }
        base = {"record": "characterization", "name": result.model.name}
        return self.store(key, payload, {**base, **(meta or {})})

    # ------------------------------------------------------------------
    # Evaluation (events, trace) records
    # ------------------------------------------------------------------
    def load_trace(
        self, key: str
    ) -> Optional[Tuple[TransitionEvents, PowerTrace]]:
        record = self.load(key)
        if record is None:
            return None
        try:
            payload = record["payload"]
            events = TransitionEvents(
                width=int(payload["width"]),
                hd=np.asarray(payload["hd"], dtype=np.int64),
                stable_zeros=np.asarray(
                    payload["stable_zeros"], dtype=np.int64
                ),
                stable_ones=np.asarray(
                    payload["stable_ones"], dtype=np.int64
                ),
            )
            trace = PowerTrace(
                charge=np.asarray(payload["charge"], dtype=np.float64),
                total_toggles=np.asarray(
                    payload["total_toggles"], dtype=np.int64
                ),
            )
            return events, trace
        except (KeyError, TypeError, ValueError, AttributeError):
            self._demote_to_quarantined_miss(key)
            return None

    def store_trace(
        self,
        key: str,
        events: TransitionEvents,
        trace: PowerTrace,
        meta: Optional[Dict[str, Any]] = None,
    ) -> Path:
        payload = {
            "width": events.width,
            "hd": events.hd.tolist(),
            "stable_zeros": events.stable_zeros.tolist(),
            "stable_ones": events.stable_ones.tolist(),
            "charge": trace.charge.tolist(),
            "total_toggles": trace.total_toggles.tolist(),
        }
        base = {"record": "trace"}
        return self.store(key, payload, {**base, **(meta or {})})

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def entries(self) -> List[Dict[str, Any]]:
        """Metadata of every cache entry, newest first."""
        rows = []
        if not self.directory.is_dir():
            return rows
        for path in self.directory.glob("*.json"):
            try:
                record = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                continue
            rows.append({
                "key": path.stem,
                "bytes": path.stat().st_size,
                "created": record.get("created", 0.0),
                **record.get("meta", {}),
            })
        rows.sort(key=lambda row: row["created"], reverse=True)
        return rows

    def clear(self) -> int:
        """Delete every entry; returns the number of files removed."""
        removed = 0
        if not self.directory.is_dir():
            return removed
        for path in self.directory.glob("*.json"):
            path.unlink(missing_ok=True)
            removed += 1
        for pattern in ("*.tmp", "*.corrupt"):
            for path in self.directory.glob(pattern):
                path.unlink(missing_ok=True)
        return removed

    def stats(self) -> Dict[str, Any]:
        """Entry count, total size and this instance's runtime counters."""
        entries = self.entries()
        return {
            "directory": str(self.directory),
            "entries": len(entries),
            "total_bytes": sum(row["bytes"] for row in entries),
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "quarantined": self.quarantined,
        }
