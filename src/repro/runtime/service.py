"""Characterization service: parallel fan-out over independent modules.

Module characterizations are embarrassingly parallel — each job simulates
its own prototype netlist with its own stream — so the service fans a list
of ``(kind, width, enhanced)`` jobs out over a :class:`ProcessPoolExecutor`.
Workers rebuild the module from its registry key (netlists are cheap to
generate, expensive to pickle) and ship back a
:class:`~repro.core.characterize.CharacterizationResult` whose embedded
:class:`~repro.core.accumulator.ClassAccumulator` carries the complete class
statistics, so the parent can refit, merge or persist without touching raw
pattern streams.

Combined with the persistent :class:`~repro.runtime.cache.ModelCache`, the
service implements the characterize-once/evaluate-many contract: jobs whose
provenance key is already cached are served from disk with zero simulator
work, and the returned :class:`ServiceReport` exposes hit/miss and timing
counters so benchmarks can report the speedup.
"""

from __future__ import annotations

import time
import zlib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .._compat import warn_once
from ..core.characterize import CharacterizationResult, characterize_module
from ..modules.library import make_module
from ..obs import tracing
from .cache import ModelCache


def characterization_seed(
    base_seed: int, width: int, enhanced: bool, kind: Optional[str] = None
) -> int:
    """Deterministic per-job seed (the derivation the harness uses).

    ``kind`` is mixed in via a stable crc32 hash (the same construction as
    the evaluation-data seed fix) so that two different module kinds at the
    same width characterize from *different* stimulus streams.  Without it,
    e.g. ``ripple_adder/4`` and ``cla_adder/4`` saw bit-identical
    characterization patterns, coupling their sampling noise.

    ``kind=None`` reproduces the historic kind-blind derivation.  The
    persistent :class:`~repro.runtime.cache.ModelCache` embeds the seed in
    every content address, so entries characterized under the old
    derivation are never served for kind-mixed requests (and vice versa) —
    they are simply orphaned and reclaimed by ``repro-power cache clear``.
    """
    seed = int(base_seed) + width * 17 + (1 if enhanced else 0)
    if kind is not None:
        seed += zlib.crc32(kind.encode("utf-8"))
    return seed


@dataclass(frozen=True)
class CharacterizationJob:
    """One unit of characterization work.

    Attributes:
        kind: Module registry kind (see ``repro-power list-modules``).
        width: Operand width passed to the module generator.
        enhanced: Also fit the enhanced (stable-zeros) model.
    """

    kind: str
    width: int
    enhanced: bool = False

    @property
    def label(self) -> str:
        suffix = "+enhanced" if self.enhanced else ""
        return f"{self.kind}/{self.width}{suffix}"


@dataclass
class ServiceReport:
    """Outcome of one :func:`characterize_jobs` call.

    Attributes:
        jobs: The jobs, in request order.
        results: One result per job (same order).  With ``strict=False``,
            failed jobs hold ``None`` here instead of raising.
        cache_hits: Jobs served from the persistent cache.
        cache_misses: Jobs that had to simulate (including ones that then
            failed).
        failures: Jobs whose characterization raised.
        errors: One entry per job: ``None`` on success, else the rendered
            exception.
        elapsed_seconds: Wall-clock time of the whole call.
        n_workers: Worker processes used for the misses.
    """

    jobs: Tuple[CharacterizationJob, ...]
    results: List[Optional[CharacterizationResult]] = field(
        default_factory=list
    )
    cache_hits: int = 0
    cache_misses: int = 0
    failures: int = 0
    errors: List[Optional[str]] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    n_workers: int = 1

    @property
    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def summary(self) -> str:
        text = (
            f"{len(self.jobs)} jobs | cache hits: {self.cache_hits} | "
            f"misses: {self.cache_misses} | workers: {self.n_workers} | "
            f"elapsed: {self.elapsed_seconds:.2f}s"
        )
        if self.failures:
            text += f" | failures: {self.failures}"
        return text


def _config_params(config: Any) -> Dict[str, Any]:
    """Extract the characterization knobs of an experiment config."""
    return {
        "n_characterization": config.n_characterization,
        "seed": config.seed,
        "glitch_aware": config.glitch_aware,
        "glitch_weight": config.glitch_weight,
        "basic_stimulus": config.basic_stimulus,
        "enhanced_stimulus": config.enhanced_stimulus,
        # Speed knob only — engines are bit-identical, so this never
        # appears in cache keys (duck-typed configs may predate it).
        "engine": getattr(config, "engine", "auto"),
    }


def _run_job(
    kind: str,
    width: int,
    enhanced: bool,
    params: Dict[str, Any],
    trace_token: Optional[Dict[str, Any]] = None,
) -> Tuple[CharacterizationResult, Optional[Dict[str, Any]]]:
    """Worker entry point (module-level so the pool can pickle it).

    ``trace_token`` is the explicit cross-process trace handoff: a worker
    re-activates the parent's trace with it and ships its span records
    back as the second element, which the parent grafts in via
    :meth:`~repro.obs.TraceContext.absorb`.  Inline (same-process) calls
    pass ``None`` — their spans land in the caller's active context
    directly and the payload is ``None``.
    """
    with tracing.remote_trace(trace_token) as trace_ctx:
        module = make_module(kind, width)
        result = characterize_module(
            module,
            n_patterns=params["n_characterization"],
            seed=characterization_seed(
                params["seed"], width, enhanced, kind
            ),
            enhanced=enhanced,
            glitch_aware=params["glitch_aware"],
            glitch_weight=params["glitch_weight"],
            stimulus=(
                params["enhanced_stimulus"] if enhanced
                else params["basic_stimulus"]
            ),
            engine=params.get("engine", "auto"),
        )
    return result, trace_ctx.payload() if trace_ctx is not None else None


def characterize_jobs(
    requests: Optional[Sequence[CharacterizationJob]] = None,
    config: Any = None,
    jobs: Any = 1,
    cache: Optional[ModelCache] = None,
    strict: bool = True,
    **legacy,
) -> ServiceReport:
    """Characterize many modules, in parallel, behind the persistent cache.

    Args:
        requests: Jobs to run; results come back in the same order.
            (Known as ``jobs=`` before PR 5; the old keyword still works
            with a :class:`DeprecationWarning`.)
        config: An :class:`~repro.eval.harness.ExperimentConfig` (or any
            object with the same characterization attributes).  Defaults to
            the stock configuration.
        jobs: Worker processes; 1 runs inline (no pool, no pickling).
            (``n_jobs=`` before PR 5.)
        cache: Persistent cache consulted before — and filled after —
            simulating.  ``None`` disables disk caching.
        strict: When True (default) the first job failure raises.  When
            False, failed jobs yield ``None`` in ``results`` with the
            rendered exception in ``errors`` — the mode the serving
            registry uses, so one bad request cannot take down a batch.

    Returns:
        A :class:`ServiceReport` with per-call hit/miss/failure counters.
    """
    # PR 5 renames.  Two legacy spellings collide on the name ``jobs``:
    # the request list used to *be* the ``jobs=`` keyword, while the
    # worker count was ``n_jobs=``.  A sequence passed as ``jobs=`` is
    # therefore the legacy request list, an int is the worker count.
    if "n_jobs" in legacy:
        warn_once(
            "characterize_jobs:n_jobs",
            "characterize_jobs: keyword 'n_jobs=' is deprecated, "
            "use 'jobs='",
        )
        value = legacy.pop("n_jobs")
        if isinstance(jobs, int):
            jobs = value
    if legacy:
        raise TypeError(f"unexpected keyword arguments: {sorted(legacy)}")
    if not isinstance(jobs, int):
        warn_once(
            "characterize_jobs:jobs",
            "characterize_jobs: passing the job list as 'jobs=' is "
            "deprecated, use 'requests='",
        )
        if requests is None:
            requests = jobs
        jobs = 1
    if requests is None:
        raise TypeError("characterize_jobs() missing the 'requests' list")
    if config is None:
        # Imported lazily: eval is a higher layer that itself imports
        # runtime, so a module-level import would be circular.
        from ..eval.harness import ExperimentConfig

        config = ExperimentConfig()
    requests = tuple(requests)
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    params = _config_params(config)
    started = time.perf_counter()
    report = ServiceReport(jobs=requests, n_workers=jobs)
    results: List[Optional[CharacterizationResult]] = [None] * len(requests)
    errors: List[Optional[str]] = [None] * len(requests)

    with tracing.span(
        "service.characterize_jobs", requests=len(requests), workers=jobs
    ):
        pending: List[Tuple[int, CharacterizationJob, Optional[str]]] = []
        for index, job in enumerate(requests):
            key = None
            if cache is not None:
                key = cache.characterization_key(
                    job.kind, job.width, job.enhanced, config,
                    characterization_seed(
                        config.seed, job.width, job.enhanced, job.kind
                    ),
                )
                cached = cache.load_characterization(key)
                if cached is not None:
                    results[index] = cached
                    report.cache_hits += 1
                    continue
            pending.append((index, job, key))
        report.cache_misses = len(pending) if cache is not None else 0

        if pending:
            trace_ctx = tracing.current()
            if jobs == 1 or len(pending) == 1:
                computed = []
                for _, job, _ in pending:
                    try:
                        # Inline: spans land in the active context
                        # directly, no token round-trip needed.
                        result, _payload = _run_job(
                            job.kind, job.width, job.enhanced, params
                        )
                        computed.append(result)
                    except Exception as exc:
                        if strict:
                            raise
                        computed.append(exc)
            else:
                # Explicit cross-process handoff: contextvars do not
                # survive pickling, so each worker gets a token and ships
                # its span records back with the result.
                token = tracing.worker_token()
                with ProcessPoolExecutor(
                    max_workers=min(jobs, len(pending))
                ) as pool:
                    futures = [
                        pool.submit(
                            _run_job, job.kind, job.width, job.enhanced,
                            params, token,
                        )
                        for _, job, _ in pending
                    ]
                    computed = []
                    for future in futures:
                        try:
                            result, payload = future.result()
                            if trace_ctx is not None:
                                trace_ctx.absorb(
                                    payload,
                                    parent=token.get("parent")
                                    if token else None,
                                )
                            computed.append(result)
                        except Exception as exc:
                            if strict:
                                raise
                            computed.append(exc)
            for (index, job, key), result in zip(pending, computed):
                if isinstance(result, Exception):
                    report.failures += 1
                    errors[index] = f"{type(result).__name__}: {result}"
                    continue
                results[index] = result
                if cache is not None and key is not None:
                    cache.store_characterization(
                        key, result,
                        meta={"kind": job.kind, "width": job.width,
                              "enhanced": job.enhanced},
                    )

    report.results = results
    report.errors = errors
    report.elapsed_seconds = time.perf_counter() - started
    return report
