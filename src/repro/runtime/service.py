"""Characterization service: parallel fan-out over independent modules.

Module characterizations are embarrassingly parallel — each job simulates
its own prototype netlist with its own stream — so the service fans a list
of ``(kind, width, enhanced)`` jobs out over a :class:`ProcessPoolExecutor`.
Workers rebuild the module from its registry key (netlists are cheap to
generate, expensive to pickle) and ship back a
:class:`~repro.core.characterize.CharacterizationResult` whose embedded
:class:`~repro.core.accumulator.ClassAccumulator` carries the complete class
statistics, so the parent can refit, merge or persist without touching raw
pattern streams.

Combined with the persistent :class:`~repro.runtime.cache.ModelCache`, the
service implements the characterize-once/evaluate-many contract: jobs whose
provenance key is already cached are served from disk with zero simulator
work, and the returned :class:`ServiceReport` exposes hit/miss and timing
counters so benchmarks can report the speedup.
"""

from __future__ import annotations

import time
import zlib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.characterize import CharacterizationResult, characterize_module
from ..modules.library import make_module
from .cache import ModelCache


def characterization_seed(
    base_seed: int, width: int, enhanced: bool, kind: Optional[str] = None
) -> int:
    """Deterministic per-job seed (the derivation the harness uses).

    ``kind`` is mixed in via a stable crc32 hash (the same construction as
    the evaluation-data seed fix) so that two different module kinds at the
    same width characterize from *different* stimulus streams.  Without it,
    e.g. ``ripple_adder/4`` and ``cla_adder/4`` saw bit-identical
    characterization patterns, coupling their sampling noise.

    ``kind=None`` reproduces the historic kind-blind derivation.  The
    persistent :class:`~repro.runtime.cache.ModelCache` embeds the seed in
    every content address, so entries characterized under the old
    derivation are never served for kind-mixed requests (and vice versa) —
    they are simply orphaned and reclaimed by ``repro-power cache clear``.
    """
    seed = int(base_seed) + width * 17 + (1 if enhanced else 0)
    if kind is not None:
        seed += zlib.crc32(kind.encode("utf-8"))
    return seed


@dataclass(frozen=True)
class CharacterizationJob:
    """One unit of characterization work.

    Attributes:
        kind: Module registry kind (see ``repro-power list-modules``).
        width: Operand width passed to the module generator.
        enhanced: Also fit the enhanced (stable-zeros) model.
    """

    kind: str
    width: int
    enhanced: bool = False

    @property
    def label(self) -> str:
        suffix = "+enhanced" if self.enhanced else ""
        return f"{self.kind}/{self.width}{suffix}"


@dataclass
class ServiceReport:
    """Outcome of one :func:`characterize_jobs` call.

    Attributes:
        jobs: The jobs, in request order.
        results: One result per job (same order).  With ``strict=False``,
            failed jobs hold ``None`` here instead of raising.
        cache_hits: Jobs served from the persistent cache.
        cache_misses: Jobs that had to simulate (including ones that then
            failed).
        failures: Jobs whose characterization raised.
        errors: One entry per job: ``None`` on success, else the rendered
            exception.
        elapsed_seconds: Wall-clock time of the whole call.
        n_workers: Worker processes used for the misses.
    """

    jobs: Tuple[CharacterizationJob, ...]
    results: List[Optional[CharacterizationResult]] = field(
        default_factory=list
    )
    cache_hits: int = 0
    cache_misses: int = 0
    failures: int = 0
    errors: List[Optional[str]] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    n_workers: int = 1

    @property
    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def summary(self) -> str:
        text = (
            f"{len(self.jobs)} jobs | cache hits: {self.cache_hits} | "
            f"misses: {self.cache_misses} | workers: {self.n_workers} | "
            f"elapsed: {self.elapsed_seconds:.2f}s"
        )
        if self.failures:
            text += f" | failures: {self.failures}"
        return text


def _config_params(config: Any) -> Dict[str, Any]:
    """Extract the characterization knobs of an experiment config."""
    return {
        "n_characterization": config.n_characterization,
        "seed": config.seed,
        "glitch_aware": config.glitch_aware,
        "glitch_weight": config.glitch_weight,
        "basic_stimulus": config.basic_stimulus,
        "enhanced_stimulus": config.enhanced_stimulus,
        # Speed knob only — engines are bit-identical, so this never
        # appears in cache keys (duck-typed configs may predate it).
        "engine": getattr(config, "engine", "auto"),
    }


def _run_job(
    kind: str, width: int, enhanced: bool, params: Dict[str, Any]
) -> CharacterizationResult:
    """Worker entry point (module-level so the pool can pickle it)."""
    module = make_module(kind, width)
    return characterize_module(
        module,
        n_patterns=params["n_characterization"],
        seed=characterization_seed(params["seed"], width, enhanced, kind),
        enhanced=enhanced,
        glitch_aware=params["glitch_aware"],
        glitch_weight=params["glitch_weight"],
        stimulus=(
            params["enhanced_stimulus"] if enhanced
            else params["basic_stimulus"]
        ),
        engine=params.get("engine", "auto"),
    )


def characterize_jobs(
    jobs: Sequence[CharacterizationJob],
    config: Any = None,
    n_jobs: int = 1,
    cache: Optional[ModelCache] = None,
    strict: bool = True,
) -> ServiceReport:
    """Characterize many modules, in parallel, behind the persistent cache.

    Args:
        jobs: Jobs to run; results come back in the same order.
        config: An :class:`~repro.eval.harness.ExperimentConfig` (or any
            object with the same characterization attributes).  Defaults to
            the stock configuration.
        n_jobs: Worker processes; 1 runs inline (no pool, no pickling).
        cache: Persistent cache consulted before — and filled after —
            simulating.  ``None`` disables disk caching.
        strict: When True (default) the first job failure raises.  When
            False, failed jobs yield ``None`` in ``results`` with the
            rendered exception in ``errors`` — the mode the serving
            registry uses, so one bad request cannot take down a batch.

    Returns:
        A :class:`ServiceReport` with per-call hit/miss/failure counters.
    """
    if config is None:
        # Imported lazily: eval is a higher layer that itself imports
        # runtime, so a module-level import would be circular.
        from ..eval.harness import ExperimentConfig

        config = ExperimentConfig()
    jobs = tuple(jobs)
    if n_jobs < 1:
        raise ValueError("n_jobs must be >= 1")
    params = _config_params(config)
    started = time.perf_counter()
    report = ServiceReport(jobs=jobs, n_workers=n_jobs)
    results: List[Optional[CharacterizationResult]] = [None] * len(jobs)
    errors: List[Optional[str]] = [None] * len(jobs)

    pending: List[Tuple[int, CharacterizationJob, Optional[str]]] = []
    for index, job in enumerate(jobs):
        key = None
        if cache is not None:
            key = cache.characterization_key(
                job.kind, job.width, job.enhanced, config,
                characterization_seed(
                    config.seed, job.width, job.enhanced, job.kind
                ),
            )
            cached = cache.load_characterization(key)
            if cached is not None:
                results[index] = cached
                report.cache_hits += 1
                continue
        pending.append((index, job, key))
    report.cache_misses = len(pending) if cache is not None else 0

    if pending:
        if n_jobs == 1 or len(pending) == 1:
            computed = []
            for _, job, _ in pending:
                try:
                    computed.append(
                        _run_job(job.kind, job.width, job.enhanced, params)
                    )
                except Exception as exc:
                    if strict:
                        raise
                    computed.append(exc)
        else:
            with ProcessPoolExecutor(
                max_workers=min(n_jobs, len(pending))
            ) as pool:
                futures = [
                    pool.submit(
                        _run_job, job.kind, job.width, job.enhanced, params
                    )
                    for _, job, _ in pending
                ]
                computed = []
                for future in futures:
                    try:
                        computed.append(future.result())
                    except Exception as exc:
                        if strict:
                            raise
                        computed.append(exc)
        for (index, job, key), result in zip(pending, computed):
            if isinstance(result, Exception):
                report.failures += 1
                errors[index] = f"{type(result).__name__}: {result}"
                continue
            results[index] = result
            if cache is not None and key is not None:
                cache.store_characterization(
                    key, result,
                    meta={"kind": job.kind, "width": job.width,
                          "enhanced": job.enhanced},
                )

    report.results = results
    report.errors = errors
    report.elapsed_seconds = time.perf_counter() - started
    return report
