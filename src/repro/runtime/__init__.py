"""Characterization runtime: parallel fan-out + persistent model cache.

This layer turns the library into a characterize-once/evaluate-many
service: :func:`characterize_jobs` spreads independent module
characterizations over worker processes, and :class:`ModelCache` persists
every fitted model and evaluation trace under a content-addressed key so
repeated runs cost zero simulator cycles.  See docs/CHARACTERIZATION.md.
"""

from .cache import (
    CACHE_FORMAT_VERSION,
    DEFAULT_CACHE_DIR,
    ENV_CACHE_DIR,
    ModelCache,
    default_cache_dir,
)
from .service import (
    CharacterizationJob,
    ServiceReport,
    characterization_seed,
    characterize_jobs,
)

__all__ = [
    "CACHE_FORMAT_VERSION",
    "CharacterizationJob",
    "DEFAULT_CACHE_DIR",
    "ENV_CACHE_DIR",
    "ModelCache",
    "ServiceReport",
    "characterization_seed",
    "characterize_jobs",
    "default_cache_dir",
]
