"""Transaction reordering for switching-activity minimization.

When a batch of independent operations (DMA descriptors, filter taps to
evaluate, test vectors) may execute in any order, ordering them to minimize
consecutive Hamming distances reduces datapath power — another member of
the optimization family the paper's introduction cites.  Finding the
optimal order is a traveling-salesman problem in Hamming space; the
standard engineering answer is the greedy nearest-neighbour chain built
here, with the Hd macro-model translating saved bit flips into saved
charge.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..core.hd_model import HdPowerModel


def nearest_neighbor_order(
    vectors: np.ndarray, start: int = 0
) -> np.ndarray:
    """Greedy minimum-Hd chaining of a batch of input vectors.

    Args:
        vectors: ``[n, m]`` boolean vector batch.
        start: Index of the first vector in the chain.

    Returns:
        Permutation of ``0..n-1``.
    """
    vectors = np.asarray(vectors, dtype=bool)
    n = vectors.shape[0]
    if not 0 <= start < n:
        raise ValueError("start out of range")
    remaining = np.ones(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    order[0] = start
    remaining[start] = False
    current = vectors[start]
    for position in range(1, n):
        candidates = np.nonzero(remaining)[0]
        distances = (vectors[candidates] != current).sum(axis=1)
        chosen = candidates[int(np.argmin(distances))]
        order[position] = chosen
        remaining[chosen] = False
        current = vectors[chosen]
    return order


def order_cost(
    vectors: np.ndarray,
    order: np.ndarray,
    model: Optional[HdPowerModel] = None,
) -> float:
    """Cost of visiting ``vectors`` in ``order``.

    With a model, the cost is the estimated total charge; without one it is
    the total Hamming distance.
    """
    vectors = np.asarray(vectors, dtype=bool)
    ordered = vectors[np.asarray(order, dtype=np.int64)]
    hd = (ordered[1:] != ordered[:-1]).sum(axis=1)
    if model is None:
        return float(hd.sum())
    return float(model.predict_cycle(hd).sum())


def reorder_report(
    vectors: np.ndarray, model: Optional[HdPowerModel] = None
) -> Tuple[np.ndarray, float, float]:
    """Convenience: greedy order plus (original, reordered) costs."""
    identity = np.arange(len(vectors))
    order = nearest_neighbor_order(vectors)
    return (
        order,
        order_cost(vectors, identity, model),
        order_cost(vectors, order, model),
    )
