"""Low-power resource binding driven by the Hd macro-model.

The paper positions its model as the quantitative engine for high-level
low-power optimization (refs [5-8]: scheduling, resource binding, module
assignment).  This module implements the classic binding problem those
references study:

    In every time slot, K operations must run on K identical functional
    units.  The assignment of operations to units is free per slot; a
    unit's dynamic power depends on the Hamming distance between the
    operand vectors it sees in consecutive slots.  Choose the assignment
    that minimizes total estimated charge.

The optimizer is *model-driven*: it never simulates gates — it queries the
characterized :class:`~repro.core.hd_model.HdPowerModel` exactly as an HLS
tool would — and its decisions are validated afterwards against the
gate-level reference.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..circuit.power import PowerSimulator
from ..core.hd_model import HdPowerModel
from ..modules.library import DatapathModule


@dataclass(frozen=True)
class BindingProblem:
    """A K-unit binding instance.

    Attributes:
        module: The functional unit (shared by all K instances).
        model: Characterized Hd model of the unit.
        operand_words: ``operand_words[i][k]`` is operation ``i``'s word
            array for operand ``k`` (unsigned bit patterns), length ``T``.
    """

    module: DatapathModule
    model: HdPowerModel
    operand_words: Tuple[Tuple[np.ndarray, ...], ...]

    @property
    def n_operations(self) -> int:
        return len(self.operand_words)

    @property
    def n_slots(self) -> int:
        return len(self.operand_words[0][0])

    def input_vectors(self) -> np.ndarray:
        """``[n_operations, T, m]`` module input bit tensor."""
        vectors = []
        for operands in self.operand_words:
            vectors.append(self.module.pack_inputs(*operands))
        return np.stack(vectors, axis=0)


def identity_binding(problem: BindingProblem) -> np.ndarray:
    """Fixed binding: operation ``i`` always runs on unit ``i``."""
    t, k = problem.n_slots, problem.n_operations
    return np.tile(np.arange(k), (t, 1))


def random_binding(problem: BindingProblem, seed: int = 0) -> np.ndarray:
    """Uniformly random permutation per slot."""
    rng = np.random.default_rng(seed)
    t, k = problem.n_slots, problem.n_operations
    return np.stack([rng.permutation(k) for _ in range(t)], axis=0)


def greedy_binding(problem: BindingProblem) -> np.ndarray:
    """Slot-by-slot greedy binding minimizing model-estimated charge.

    For each slot the permutation with the smallest total estimated charge
    against each unit's previous vector is chosen (exhaustive over the K!
    permutations; intended for the small K of datapath binding).
    """
    k = problem.n_operations
    if k > 7:
        raise ValueError("greedy binding enumerates permutations; K <= 7")
    vectors = problem.input_vectors()  # [K, T, m]
    t_slots = problem.n_slots
    model = problem.model
    assignment = np.empty((t_slots, k), dtype=np.int64)
    assignment[0] = np.arange(k)
    previous = vectors[assignment[0], 0]  # [K, m]
    permutations = list(itertools.permutations(range(k)))
    for t in range(1, t_slots):
        candidates = vectors[:, t]  # [K, m] per operation
        # Cost matrix: charge if unit u runs operation i next.
        hd = (previous[:, None, :] != candidates[None, :, :]).sum(axis=2)
        cost = model.coefficients[hd]  # [K units, K ops]
        best_perm, best_cost = None, np.inf
        for perm in permutations:
            total = cost[np.arange(k), list(perm)].sum()
            if total < best_cost:
                best_perm, best_cost = perm, total
        assignment[t] = best_perm
        previous = candidates[list(best_perm)]
    return assignment


def unit_streams(
    problem: BindingProblem, assignment: np.ndarray
) -> List[np.ndarray]:
    """Per-unit input bit streams induced by a binding."""
    vectors = problem.input_vectors()
    t_slots, k = assignment.shape
    streams = []
    for unit in range(k):
        ops = assignment[:, unit]
        streams.append(vectors[ops, np.arange(t_slots)])
    return streams


@dataclass(frozen=True)
class BindingEvaluation:
    """Estimated and (optionally) simulated charge of one binding."""

    label: str
    estimated_total: float
    simulated_total: Optional[float] = None


def evaluate_binding(
    problem: BindingProblem,
    assignment: np.ndarray,
    label: str = "",
    gate_level: bool = False,
    glitch_aware: bool = True,
) -> BindingEvaluation:
    """Charge of a binding: model estimate and optional gate-level truth."""
    if assignment.shape != (problem.n_slots, problem.n_operations):
        raise ValueError("assignment shape mismatch")
    for row in assignment:
        if sorted(row) != list(range(problem.n_operations)):
            raise ValueError("each slot must be a permutation of operations")
    streams = unit_streams(problem, assignment)
    estimated = 0.0
    simulated = 0.0
    simulator = None
    if gate_level:
        simulator = PowerSimulator(
            problem.module.compiled, glitch_aware=glitch_aware
        )
    for bits in streams:
        hd = (bits[1:] != bits[:-1]).sum(axis=1)
        estimated += float(problem.model.predict_cycle(hd).sum())
        if simulator is not None:
            simulated += simulator.simulate(bits).total_charge
    return BindingEvaluation(
        label=label,
        estimated_total=estimated,
        simulated_total=simulated if gate_level else None,
    )
