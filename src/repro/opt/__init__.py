"""Model-driven low-power optimization (the paper's motivating use case)."""

from .reorder import nearest_neighbor_order, order_cost, reorder_report
from .binding import (
    BindingEvaluation,
    BindingProblem,
    evaluate_binding,
    greedy_binding,
    identity_binding,
    random_binding,
    unit_streams,
)

__all__ = [
    "BindingEvaluation",
    "BindingProblem",
    "evaluate_binding",
    "greedy_binding",
    "identity_binding",
    "nearest_neighbor_order",
    "order_cost",
    "random_binding",
    "reorder_report",
    "unit_streams",
]
