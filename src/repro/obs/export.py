"""Trace exporters: Chrome ``trace_event`` JSON and human summaries.

Three views over one :class:`~repro.obs.tracing.TraceContext`:

* :func:`chrome_trace` — the Chrome Trace Event format (complete ``X``
  events), loadable in ``about://tracing`` / Perfetto for flamegraphs;
* :func:`profile_tree` — a terminal tree aggregated by span path, the
  body of the CLI ``--profile`` summary;
* :func:`span_summary` — per-name ``{count, total_s, max_s}`` rollup,
  compact enough for a serve response envelope or a ``BENCH_*.json``
  record.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from .events import EVENTS
from .tracing import TraceContext


def chrome_trace(ctx: TraceContext) -> Dict[str, Any]:
    """Render a context as a Chrome Trace Event JSON object.

    Every span becomes a complete (``"ph": "X"``) event; timestamps are
    microseconds relative to the earliest span so the viewer opens at
    t=0.  The shared event-counter snapshot rides along in ``otherData``.
    """
    records = ctx.records()
    origin = min((r["start"] for r in records), default=0.0)
    events: List[Dict[str, Any]] = []
    for record in records:
        attrs = {
            key: value for key, value in record["attrs"].items()
            if isinstance(value, (str, int, float, bool)) or value is None
        }
        events.append({
            "name": record["name"],
            "ph": "X",
            "ts": (record["start"] - origin) * 1e6,
            "dur": record["dur"] * 1e6,
            "pid": record["pid"],
            "tid": record["tid"],
            "cat": "repro",
            "args": attrs,
        })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "trace_id": ctx.trace_id,
            "counters": EVENTS.snapshot(),
        },
    }


def write_chrome(ctx: TraceContext, path: str) -> str:
    """Write :func:`chrome_trace` JSON to ``path``; returns the path."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(ctx), handle, indent=1)
        handle.write("\n")
    return path


def validate_chrome(obj: Any) -> List[str]:
    """Structural check that ``obj`` is loadable Chrome-trace JSON.

    Returns a list of problems; empty means well-formed.  Used by the
    ``profile-smoke`` CI gate so a malformed exporter fails loudly
    instead of producing a trace the viewer silently rejects.
    """
    problems: List[str] = []
    if not isinstance(obj, dict):
        return ["top level is not an object"]
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is not a list"]
    if not events:
        problems.append("traceEvents is empty")
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {index} is not an object")
            continue
        for field in ("name", "ph", "ts", "pid", "tid"):
            if field not in event:
                problems.append(f"event {index} missing {field!r}")
        if event.get("ph") == "X" and "dur" not in event:
            problems.append(f"event {index} is 'X' but missing 'dur'")
        if not isinstance(event.get("ts", 0), (int, float)):
            problems.append(f"event {index} has non-numeric ts")
    return problems


def span_summary(ctx: TraceContext) -> Dict[str, Dict[str, float]]:
    """Per-span-name rollup: ``{name: {count, total_s, max_s}}``."""
    summary: Dict[str, Dict[str, float]] = {}
    for record in ctx.records():
        entry = summary.setdefault(
            record["name"], {"count": 0, "total_s": 0.0, "max_s": 0.0}
        )
        entry["count"] += 1
        entry["total_s"] += record["dur"]
        entry["max_s"] = max(entry["max_s"], record["dur"])
    for entry in summary.values():
        entry["total_s"] = round(entry["total_s"], 6)
        entry["max_s"] = round(entry["max_s"], 6)
    return summary


def _aggregate_paths(
    ctx: TraceContext,
) -> List[Tuple[Tuple[str, ...], int, float]]:
    """Aggregate spans by their name-path from the root.

    Returns ``(path, count, total_seconds)`` sorted depth-first with
    children ordered by descending total time — the classic profiler
    tree shape.
    """
    records = ctx.records()
    by_id = {r["id"]: r for r in records}

    def path_of(record: Dict[str, Any]) -> Tuple[str, ...]:
        names: List[str] = []
        seen = set()
        node: Optional[Dict[str, Any]] = record
        while node is not None and node["id"] not in seen:
            seen.add(node["id"])
            names.append(node["name"])
            parent = node.get("parent")
            node = by_id.get(parent) if parent is not None else None
        return tuple(reversed(names))

    totals: Dict[Tuple[str, ...], Tuple[int, float]] = {}
    for record in records:
        path = path_of(record)
        count, total = totals.get(path, (0, 0.0))
        totals[path] = (count + 1, total + record["dur"])

    def sort_key(path: Tuple[str, ...]):
        # Depth-first: order each prefix by descending time at that node.
        key = []
        for depth in range(1, len(path) + 1):
            prefix = path[:depth]
            _, total = totals.get(prefix, (0, 0.0))
            key.append((-total, prefix[-1]))
        return key

    return [
        (path, *totals[path]) for path in sorted(totals, key=sort_key)
    ]


def profile_tree(ctx: TraceContext) -> str:
    """Human-readable profile: an indented tree of span paths.

    Example::

        characterize                      1x   1.234s
          characterize.batch              8x   1.101s
            sim.stream                    8x   0.913s
              sim.chunk                  16x   0.871s
    """
    rows = _aggregate_paths(ctx)
    if not rows:
        return "(no spans recorded)"
    name_width = max(
        (2 * (len(path) - 1) + len(path[-1]) for path, _, _ in rows),
        default=20,
    )
    name_width = max(name_width, 20)
    lines = []
    for path, count, total in rows:
        indent = "  " * (len(path) - 1)
        label = f"{indent}{path[-1]}"
        lines.append(
            f"{label:<{name_width}}  {count:>6}x  {total:>9.4f}s"
        )
    return "\n".join(lines)
