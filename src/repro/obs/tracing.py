"""Contextvar-propagated trace spans, safe across threads and processes.

The span model is deliberately small:

* A :class:`TraceContext` owns a flat list of **span records** (plain
  dicts — picklable, renderable).  Each record has an id, a parent id,
  a name, epoch-anchored start time, duration, attributes, and the
  pid/thread that produced it.
* :func:`trace` activates a context for a ``with`` block;
  :func:`span` opens a nested timer inside the active context.  With no
  active context, :func:`span` returns a shared no-op singleton — the
  disabled fast path is two contextvar reads and costs well under the
  2% budget on ``make bench-sim``.
* Propagation is **explicit where Python drops it**.  ``contextvars``
  flow into ``asyncio`` tasks automatically, but *not* into
  ``loop.run_in_executor`` threads and *not* into
  ``ProcessPoolExecutor`` workers.  :func:`wrap` fixes the first
  (capture ``copy_context()`` at submit time), and the
  :func:`worker_token` / :func:`remote_trace` pair fixes the second
  (ship a picklable token out, collect the worker's span records back,
  :meth:`TraceContext.absorb` re-parents them into the caller's tree).

Timestamps are ``time.perf_counter()`` deltas anchored to the epoch,
re-anchored by :func:`resync_clock` at every trace root (import-time-only
anchoring drifted in long-lived serve processes), so spans recorded in
different processes land on one approximately shared timeline in the
Chrome trace.
"""

from __future__ import annotations

import contextvars
import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from .events import EVENTS

#: Maps ``perf_counter`` readings onto the epoch timeline.  Re-anchored by
#: :func:`resync_clock` at every :func:`trace` / :func:`remote_trace` root:
#: an import-time-only offset drifts in long-lived serve processes
#: (``perf_counter`` and the wall clock tick at slightly different rates,
#: and NTP steps the wall clock), skewing cross-process Chrome trace
#: alignment.  Per-root re-anchoring keeps skew bounded by one trace's
#: duration instead of the process's uptime.
_CLOCK_OFFSET = time.time() - time.perf_counter()


def resync_clock() -> float:
    """Re-anchor the perf_counter-to-epoch offset; returns the new offset.

    Called automatically when a root :func:`trace` (or a worker's
    :func:`remote_trace`) starts.  Cheap enough to call freely — two clock
    reads — and safe mid-trace: spans only use the offset via :func:`_now`,
    so a re-sync shifts subsequent timestamps onto the *corrected*
    timeline, which is the point.
    """
    global _CLOCK_OFFSET
    _CLOCK_OFFSET = time.time() - time.perf_counter()
    return _CLOCK_OFFSET


def _now() -> float:
    """Epoch-anchored high-resolution timestamp."""
    return time.perf_counter() + _CLOCK_OFFSET


class TraceContext:
    """A single trace: an id plus the span records collected under it."""

    __slots__ = ("trace_id", "_lock", "_records", "_next_id")

    def __init__(self, trace_id: Optional[str] = None):
        self.trace_id = trace_id or f"{os.getpid():x}-{id(self):x}"
        self._lock = threading.Lock()
        self._records: List[Dict[str, Any]] = []
        self._next_id = 1

    def add(self, name: str, start: float, duration: float,
            parent: Optional[int], attrs: Dict[str, Any]) -> int:
        """Record one finished span; returns its id."""
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            self._records.append({
                "id": span_id,
                "parent": parent,
                "name": name,
                "start": start,
                "dur": duration,
                "attrs": attrs,
                "pid": os.getpid(),
                "tid": threading.get_ident(),
            })
        EVENTS.spans_recorded.inc()
        return span_id

    def records(self) -> List[Dict[str, Any]]:
        """Snapshot of the recorded spans (copies of the record dicts)."""
        with self._lock:
            return [dict(r) for r in self._records]

    def payload(self) -> Dict[str, Any]:
        """Picklable export of this context (for process handoff)."""
        return {"trace_id": self.trace_id, "records": self.records()}

    def absorb(self, payload: Optional[Dict[str, Any]],
               parent: Optional[int] = None) -> None:
        """Merge a worker's :meth:`payload` into this context.

        Span ids are remapped so they cannot collide with locally issued
        ids; worker root spans (parent ``None``) are re-parented under
        ``parent`` so the worker subtree hangs off the span that
        dispatched it.
        """
        if not payload:
            return
        records = payload.get("records") or []
        if not records:
            return
        with self._lock:
            remap: Dict[int, int] = {}
            for record in records:
                remap[record["id"]] = self._next_id
                self._next_id += 1
            for record in records:
                merged = dict(record)
                merged["id"] = remap[record["id"]]
                old_parent = record.get("parent")
                if old_parent is None:
                    merged["parent"] = parent
                else:
                    merged["parent"] = remap.get(old_parent, parent)
                self._records.append(merged)


#: The active trace context, if any.
_CURRENT: contextvars.ContextVar[Optional[TraceContext]] = \
    contextvars.ContextVar("repro_trace_context", default=None)
#: Id of the innermost open span — the parent for the next `span()`.
_PARENT: contextvars.ContextVar[Optional[int]] = \
    contextvars.ContextVar("repro_trace_parent", default=None)


def current() -> Optional[TraceContext]:
    """The active :class:`TraceContext`, or ``None`` when not tracing."""
    return _CURRENT.get()


class _NullSpan:
    """Shared do-nothing span: the disabled-tracing fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None

    def set(self, **attrs: Any) -> None:
        return None


NULL_SPAN = _NullSpan()


def span(name: str, **attrs: Any):
    """Open a nested timer under the active trace (no-op when disabled).

    Usage::

        with span("sim.chunk", rows=2048):
            ...

    Returns the shared :data:`NULL_SPAN` when no trace is active, so the
    disabled cost is two contextvar reads and a truth test.
    """
    ctx = _CURRENT.get()
    if ctx is None:
        return NULL_SPAN
    return _open_span(ctx, name, attrs)


@contextmanager
def _open_span(ctx: TraceContext, name: str,
               attrs: Dict[str, Any]) -> Iterator["_LiveSpan"]:
    parent = _PARENT.get()
    # Claim this span's id up front so children can parent onto it even
    # though the record is only appended when the span closes.
    with ctx._lock:
        span_id = ctx._next_id
        ctx._next_id += 1
    token = _PARENT.set(span_id)
    live = _LiveSpan(attrs)
    start = _now()
    try:
        yield live
    finally:
        duration = _now() - start
        _PARENT.reset(token)
        with ctx._lock:
            ctx._records.append({
                "id": span_id,
                "parent": parent,
                "name": name,
                "start": start,
                "dur": duration,
                "attrs": live.attrs,
                "pid": os.getpid(),
                "tid": threading.get_ident(),
            })
        EVENTS.spans_recorded.inc()


class _LiveSpan:
    """Handle yielded by :func:`span` for attaching attributes."""

    __slots__ = ("attrs",)

    def __init__(self, attrs: Dict[str, Any]):
        self.attrs = attrs

    def set(self, **attrs: Any) -> None:
        self.attrs.update(attrs)

    def __enter__(self) -> "_LiveSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


@contextmanager
def trace(name: str, trace_id: Optional[str] = None,
          **attrs: Any) -> Iterator[TraceContext]:
    """Activate a new trace for the ``with`` block.

    The block body runs inside a root span ``name``; nested :func:`span`
    calls (in this task, its awaited children, and anything dispatched
    through :func:`wrap` / :func:`worker_token`) attach to the same
    context.  Yields the :class:`TraceContext` for export.

    Nested ``trace()`` calls do not start a second trace — they behave
    like a plain :func:`span` inside the active one, so library code can
    declare trace boundaries without stomping a caller's context.
    """
    existing = _CURRENT.get()
    if existing is not None:
        with span(name, **attrs):
            yield existing
        return
    resync_clock()  # fresh epoch anchor per trace root (serve drift fix)
    ctx = TraceContext(trace_id)
    token = _CURRENT.set(ctx)
    try:
        with _open_span(ctx, name, dict(attrs)):
            yield ctx
    finally:
        _CURRENT.reset(token)


def wrap(fn, *args, **kwargs):
    """Bind ``fn`` to the *current* context for executor handoff.

    ``loop.run_in_executor`` and bare ``ThreadPoolExecutor.submit`` run
    callables in threads that do **not** inherit contextvars.  Wrapping
    the callable at submit time carries the active trace (and span
    parent) across::

        await loop.run_in_executor(pool, tracing.wrap(fn, arg))

    Cheap when not tracing: ``copy_context`` on a default-valued context
    is a small constant cost paid only at submit granularity.
    """
    ctx = contextvars.copy_context()

    def _call():
        return ctx.run(fn, *args, **kwargs)

    return _call


def worker_token() -> Optional[Dict[str, Any]]:
    """Picklable handoff token for ``ProcessPoolExecutor`` workers.

    ``None`` when not tracing (workers skip all span bookkeeping).  The
    worker passes it to :func:`remote_trace`; the parent absorbs the
    records the worker ships back.
    """
    ctx = _CURRENT.get()
    if ctx is None:
        return None
    return {"trace_id": ctx.trace_id, "parent": _PARENT.get()}


@contextmanager
def remote_trace(token: Optional[Dict[str, Any]]
                 ) -> Iterator[Optional[TraceContext]]:
    """Re-activate a parent's trace inside a worker process.

    Spans recorded in the block accumulate in a fresh local context;
    the worker returns ``ctx.payload()`` with its result and the parent
    calls :meth:`TraceContext.absorb` to graft the subtree in.  A
    ``None`` token (tracing disabled) yields ``None`` and records
    nothing.
    """
    if token is None:
        yield None
        return
    resync_clock()  # worker processes re-anchor like local trace roots
    ctx = TraceContext(token.get("trace_id"))
    cur_token = _CURRENT.set(ctx)
    # Forked workers inherit the dispatching thread's contextvars, so an
    # open parent span id could leak in; reset it — worker spans must be
    # roots of the local context (absorb() re-parents them).
    par_token = _PARENT.set(None)
    try:
        yield ctx
    finally:
        _PARENT.reset(par_token)
        _CURRENT.reset(cur_token)
