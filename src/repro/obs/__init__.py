"""Observability: tracing spans, always-on event counters, exporters.

The one-stop import for instrumented code::

    from repro.obs import EVENTS, span, trace

    with trace("characterize") as ctx:
        with span("sim.stream", engine="packed"):
            ...
    EVENTS.sim_transitions.inc(n, engine="packed")

See ``docs/OBSERVABILITY.md`` for the span model and counter registry.
"""

from .events import (
    BATCH_SIZE_BUCKETS,
    Counter,
    EventCounters,
    EVENTS,
    Gauge,
    Histogram,
    LATENCY_BUCKETS,
    MetricsRegistry,
    delta,
    global_events,
)
from .export import (
    chrome_trace,
    profile_tree,
    span_summary,
    validate_chrome,
    write_chrome,
)
from .tracing import (
    NULL_SPAN,
    TraceContext,
    current,
    remote_trace,
    resync_clock,
    span,
    trace,
    worker_token,
    wrap,
)

__all__ = [
    "BATCH_SIZE_BUCKETS",
    "Counter",
    "EventCounters",
    "EVENTS",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "NULL_SPAN",
    "TraceContext",
    "chrome_trace",
    "current",
    "delta",
    "global_events",
    "profile_tree",
    "remote_trace",
    "resync_clock",
    "span",
    "span_summary",
    "trace",
    "validate_chrome",
    "worker_token",
    "wrap",
    "write_chrome",
]
