"""Shared metric primitives and the process-global event-counter registry.

This module is the single home of the repository's metric data model —
:class:`Counter`, :class:`Gauge`, :class:`Histogram` and
:class:`MetricsRegistry` (all thread-safe, zero-dependency, rendered in
the Prometheus text exposition format).  The serving layer's
``repro.serve.metrics`` re-exports them; nothing else defines counters.

On top of the primitives sits :data:`EVENTS`, the **always-on** global
counter set: cheap monotonic counters incremented on the hot paths of
every subsystem — transitions simulated per engine, toggles counted,
classification passes, model-fit updates, persistent-cache hits/misses,
micro-batch sizes.  "Always-on" is a budget, not a slogan: every
increment is one dict update under an uncontended lock, placed at
call granularity (per simulate/classify/flush call, never per cycle),
so the cost disappears next to the numpy work it accounts for.

Consumers:

* ``repro.serve.metrics`` renders :data:`EVENTS` into ``/metrics`` after
  its own serve-local series — one registry, one page;
* the ``--profile`` CLI summary and :mod:`repro.obs.export` attach a
  counter snapshot to every trace artifact;
* tests assert on :func:`snapshot` **deltas**, never absolute values
  (the registry is process-global and other tests also feed it).
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Latency buckets (seconds) sized for an in-process estimation service:
#: sub-millisecond fast paths up to multi-second characterization misses.
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Batch-size buckets (requests per flush).
BATCH_SIZE_BUCKETS: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128)


def _format_value(value: float) -> str:
    """Prometheus-style number rendering (integers without trailing .0)."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_labels(label_names: Sequence[str], values: Tuple[str, ...]) -> str:
    if not label_names:
        return ""
    pairs = []
    for name, value in zip(label_names, values):
        escaped = (
            str(value).replace("\\", r"\\").replace('"', r"\"")
            .replace("\n", r"\n")
        )
        pairs.append(f'{name}="{escaped}"')
    return "{" + ",".join(pairs) + "}"


class _Metric:
    """Shared name/help/label plumbing for all metric types."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str,
                 label_names: Sequence[str] = ()):
        self.name = name
        self.help_text = help_text
        self.label_names = tuple(label_names)
        self._lock = threading.Lock()

    def _key(self, labels: Dict[str, str]) -> Tuple[str, ...]:
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"{self.name} expects labels {self.label_names}, "
                f"got {tuple(labels)}"
            )
        return tuple(str(labels[name]) for name in self.label_names)

    def header(self) -> List[str]:
        return [
            f"# HELP {self.name} {self.help_text}",
            f"# TYPE {self.name} {self.kind}",
        ]


class Counter(_Metric):
    """Monotonically increasing counter, optionally labelled."""

    kind = "counter"

    def __init__(self, name, help_text, label_names=()):
        super().__init__(name, help_text, label_names)
        self._values: Dict[Tuple[str, ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        with self._lock:
            return self._values.get(self._key(labels), 0.0)

    def total(self) -> float:
        """Sum over every label combination."""
        with self._lock:
            return sum(self._values.values())

    def items(self) -> List[Tuple[Tuple[str, ...], float]]:
        """Snapshot of every (label values, value) pair."""
        with self._lock:
            return sorted(self._values.items())

    def render(self) -> List[str]:
        lines = self.header()
        items = self.items()
        for key, value in items:
            labels = _format_labels(self.label_names, key)
            lines.append(f"{self.name}{labels} {_format_value(value)}")
        if not items and not self.label_names:
            lines.append(f"{self.name} 0")
        return lines


class Gauge(_Metric):
    """Settable value (queue depth, in-flight requests)."""

    kind = "gauge"

    def __init__(self, name, help_text, label_names=()):
        super().__init__(name, help_text, label_names)
        self._values: Dict[Tuple[str, ...], float] = {}

    def set(self, value: float, **labels: str) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: str) -> float:
        with self._lock:
            return self._values.get(self._key(labels), 0.0)

    def items(self) -> List[Tuple[Tuple[str, ...], float]]:
        with self._lock:
            return sorted(self._values.items())

    def render(self) -> List[str]:
        lines = self.header()
        items = self.items()
        for key, value in items:
            labels = _format_labels(self.label_names, key)
            lines.append(f"{self.name}{labels} {_format_value(value)}")
        if not items and not self.label_names:
            lines.append(f"{self.name} 0")
        return lines


class Histogram(_Metric):
    """Fixed-bucket histogram with Prometheus cumulative rendering."""

    kind = "histogram"

    def __init__(self, name, help_text, buckets: Sequence[float],
                 label_names=()):
        super().__init__(name, help_text, label_names)
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("buckets must be a non-empty ascending sequence")
        self.buckets = tuple(float(b) for b in buckets)
        # Per label set: per-bucket counts (+1 overflow slot), sum, count.
        self._counts: Dict[Tuple[str, ...], List[int]] = {}
        self._sums: Dict[Tuple[str, ...], float] = {}

    def observe(self, value: float, **labels: str) -> None:
        key = self._key(labels)
        index = bisect_left(self.buckets, value)
        with self._lock:
            counts = self._counts.get(key)
            if counts is None:
                counts = [0] * (len(self.buckets) + 1)
                self._counts[key] = counts
                self._sums[key] = 0.0
            counts[index] += 1
            self._sums[key] += value

    def count(self, **labels: str) -> int:
        with self._lock:
            counts = self._counts.get(self._key(labels))
            return sum(counts) if counts else 0

    def quantile(self, q: float, **labels: str) -> Optional[float]:
        """Bucket upper-bound estimate of the q-quantile (for /healthz)."""
        with self._lock:
            counts = self._counts.get(self._key(labels))
            if not counts or sum(counts) == 0:
                return None
            target = q * sum(counts)
            running = 0
            for index, bucket_count in enumerate(counts):
                running += bucket_count
                if running >= target:
                    if index < len(self.buckets):
                        return self.buckets[index]
                    return float("inf")
        return None

    def render(self) -> List[str]:
        lines = self.header()
        with self._lock:
            items = sorted(self._counts.items())
            sums = dict(self._sums)
        for key, counts in items:
            cumulative = 0
            for bound, bucket_count in zip(self.buckets, counts):
                cumulative += bucket_count
                labels = _format_labels(
                    self.label_names + ("le",),
                    key + (_format_value(bound),),
                )
                lines.append(f"{self.name}_bucket{labels} {cumulative}")
            cumulative += counts[-1]
            labels = _format_labels(
                self.label_names + ("le",), key + ("+Inf",)
            )
            lines.append(f"{self.name}_bucket{labels} {cumulative}")
            base = _format_labels(self.label_names, key)
            lines.append(
                f"{self.name}_sum{base} {_format_value(sums[key])}"
            )
            lines.append(f"{self.name}_count{base} {cumulative}")
        return lines


class MetricsRegistry:
    """Ordered collection of metrics rendered as one /metrics page."""

    def __init__(self):
        self._metrics: Dict[str, _Metric] = {}
        self._lock = threading.Lock()

    def _register(self, metric: _Metric) -> _Metric:
        with self._lock:
            if metric.name in self._metrics:
                raise ValueError(f"duplicate metric {metric.name!r}")
            self._metrics[metric.name] = metric
        return metric

    def counter(self, name: str, help_text: str,
                label_names: Sequence[str] = ()) -> Counter:
        return self._register(Counter(name, help_text, label_names))

    def gauge(self, name: str, help_text: str,
              label_names: Sequence[str] = ()) -> Gauge:
        return self._register(Gauge(name, help_text, label_names))

    def histogram(self, name: str, help_text: str,
                  buckets: Sequence[float],
                  label_names: Sequence[str] = ()) -> Histogram:
        return self._register(
            Histogram(name, help_text, buckets, label_names)
        )

    def get(self, name: str) -> Optional[_Metric]:
        with self._lock:
            return self._metrics.get(name)

    def render(self) -> str:
        """The full Prometheus text exposition page."""
        with self._lock:
            metrics: Iterable[_Metric] = list(self._metrics.values())
        lines: List[str] = []
        for metric in metrics:
            lines.extend(metric.render())
        return "\n".join(lines) + "\n"

    def snapshot(self) -> Dict[str, float]:
        """Flat ``name{label="v"} -> value`` view of counters and gauges.

        Histograms contribute their observation counts as ``name_count``.
        Tests diff two snapshots instead of asserting absolute values,
        because the global registry accumulates across a whole process.
        """
        with self._lock:
            metrics = list(self._metrics.values())
        flat: Dict[str, float] = {}
        for metric in metrics:
            if isinstance(metric, (Counter, Gauge)):
                for key, value in metric.items():
                    flat[metric.name + _format_labels(metric.label_names, key)] = value
            elif isinstance(metric, Histogram):
                with metric._lock:
                    for key, counts in metric._counts.items():
                        label = _format_labels(metric.label_names, key)
                        flat[f"{metric.name}_count{label}"] = float(sum(counts))
        return flat


class EventCounters:
    """The cross-subsystem always-on counter set (see module docstring).

    One instance per process normally (:data:`EVENTS`); tests may build
    private instances to assert in isolation.  Every series is prefixed
    ``repro_`` so a serving ``/metrics`` page can render them next to its
    ``serve_``-prefixed local series without collisions.
    """

    def __init__(self):
        self.registry = MetricsRegistry()
        r = self.registry
        # Simulation kernels (repro.circuit.power).
        self.sim_transitions = r.counter(
            "repro_sim_transitions_total",
            "Input transitions pushed through the reference simulator, "
            "by resolved engine.",
            ("engine",),
        )
        self.sim_toggles = r.counter(
            "repro_sim_toggles_total",
            "Net toggle events counted by the reference simulator.",
        )
        self.sim_seconds = r.counter(
            "repro_sim_seconds_total",
            "Wall-clock seconds spent inside PowerSimulator.simulate.",
        )
        # Bitwise-program compiler and executor (repro.circuit.program).
        self.program_compiles = r.counter(
            "repro_program_compiles_total",
            "Netlist-to-bitwise-program compilations (compiled engine).",
        )
        self.program_instructions = r.counter(
            "repro_program_instructions_total",
            "Instructions emitted by the bitwise-program compiler, by kind "
            "(op = fused (level, type) group, lut = folded cone group).",
            ("kind",),
        )
        self.program_steps = r.counter(
            "repro_program_steps_total",
            "Unit-delay relaxation steps executed by the compiled engine.",
        )
        self.program_evals = r.counter(
            "repro_program_evals_total",
            "Windowed group evaluations executed by the compiled engine "
            "(each covers one type block's still-active level suffix, so "
            "this is far below steps x groups x gates).",
        )
        # Switching-event classification (repro.core.events).
        self.classify_passes = r.counter(
            "repro_classify_passes_total",
            "classify_transitions calls (one vectorized pass each).",
        )
        self.classify_cycles = r.counter(
            "repro_classify_cycles_total",
            "Transitions classified into switching-event classes.",
        )
        # Model fitting (repro.core.accumulator / characterize).
        self.fit_updates = r.counter(
            "repro_fit_updates_total",
            "ClassAccumulator batch updates folded into class statistics.",
        )
        self.fit_samples = r.counter(
            "repro_fit_samples_total",
            "Classified transitions folded into class statistics.",
        )
        self.characterize_runs = r.counter(
            "repro_characterize_runs_total",
            "characterize_module calls completed.",
        )
        self.characterize_patterns = r.counter(
            "repro_characterize_patterns_total",
            "Stimulus patterns consumed by characterization runs.",
        )
        # Persistent model cache (repro.runtime.cache).
        self.cache_lookups = r.counter(
            "repro_cache_lookups_total",
            "Persistent-cache lookups by outcome (hit/miss).",
            ("result",),
        )
        self.cache_stores = r.counter(
            "repro_cache_stores_total",
            "Records written to the persistent cache.",
        )
        self.cache_quarantined = r.counter(
            "repro_cache_quarantined_total",
            "Corrupt cache records quarantined (renamed .corrupt).",
        )
        # Micro-batch estimation engine (repro.serve.batching).
        self.batch_requests = r.counter(
            "repro_batch_requests_total",
            "Estimation requests processed by the batch engine.",
        )
        self.batch_cycles = r.counter(
            "repro_batch_cycles_total",
            "Transition cycles classified by the batch engine.",
        )
        # Tracing subsystem itself.
        self.spans_recorded = r.counter(
            "repro_spans_recorded_total",
            "Trace spans recorded (zero unless a trace is active).",
        )

    def render(self) -> str:
        return self.registry.render()

    def snapshot(self) -> Dict[str, float]:
        return self.registry.snapshot()


#: The process-global always-on counters every subsystem feeds.
EVENTS = EventCounters()


def global_events() -> EventCounters:
    """The process-global :class:`EventCounters` instance."""
    return EVENTS


def delta(before: Dict[str, float], after: Dict[str, float]) -> Dict[str, float]:
    """Non-zero differences between two :meth:`snapshot` views."""
    changed = {}
    for name, value in after.items():
        diff = value - before.get(name, 0.0)
        if diff:
            changed[name] = diff
    return changed
