"""Power-area-energy (PAE) reports: module families × widths × nodes.

The deployment-facing face of the calibration layer: characterize (or
cache-hit) each requested ``(family, width)`` **once**, then answer the
whole node sweep post-hoc — the same fitted Hd model prices a 16-bit CSA
multiplier at 180 nm and at 22 nm.  Surfaced as ``repro-power report
pae`` (JSON envelope + fixed-width table) and ``make tech-smoke``.

The JSON envelope is versioned and schema-checked by :func:`validate_pae`
so CI and downstream tooling can rely on its shape.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from .calibrate import Calibration, gate_area_units
from .nodes import TECH_TABLE_VERSION, TechNode, get_node

#: Envelope schema version for persisted/served PAE reports.
PAE_REPORT_VERSION = 1

#: Stimulus class driving the normalized estimate (Section 4 data types).
DEFAULT_DATA_TYPE = "III"


@dataclass(frozen=True)
class PaeCell:
    """One (family, width, node) cell of a PAE report."""

    kind: str
    width: int
    node: str
    vdd: float
    f_clk: float
    average_charge_units: float
    charge_coulombs: float
    energy_joules: float
    power_watts: float
    area_m2: float
    leakage_watts: float
    n_gates: int
    gate_units: float
    source: str

    @property
    def total_power_watts(self) -> float:
        return self.power_watts + self.leakage_watts

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "width": self.width,
            "node": self.node,
            "vdd": self.vdd,
            "f_clk": self.f_clk,
            "average_charge_units": self.average_charge_units,
            "charge_coulombs": self.charge_coulombs,
            "energy_joules": self.energy_joules,
            "power_watts": self.power_watts,
            "total_power_watts": self.total_power_watts,
            "area_m2": self.area_m2,
            "leakage_watts": self.leakage_watts,
            "n_gates": self.n_gates,
            "gate_units": self.gate_units,
            "source": self.source,
        }


@dataclass
class PaeReport:
    """A full sweep: every requested family at every width and node."""

    kinds: List[str]
    widths: List[int]
    nodes: List[str]
    data_type: str
    n_patterns: int
    seed: int
    cells: List[PaeCell] = field(default_factory=list)
    seconds: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "report": "pae",
            "version": PAE_REPORT_VERSION,
            "table_version": TECH_TABLE_VERSION,
            "kinds": list(self.kinds),
            "widths": [int(w) for w in self.widths],
            "nodes": list(self.nodes),
            "data_type": self.data_type,
            "n_patterns": int(self.n_patterns),
            "seed": int(self.seed),
            "seconds": self.seconds,
            "cells": [cell.to_dict() for cell in self.cells],
        }


def pae_report(
    kinds: Sequence[str],
    widths: Sequence[int],
    nodes: Sequence[Union[str, int, float, TechNode]],
    session: Any = None,
    data_type: str = DEFAULT_DATA_TYPE,
    n_patterns: int = 1500,
    seed: int = 0,
    vdd: Optional[float] = None,
    f_clk: Optional[float] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> PaeReport:
    """Sweep families across widths and technology nodes.

    Args:
        kinds: Module families (registry kind names).
        widths: Operand widths per family.
        nodes: Technology nodes (any :func:`~repro.tech.nodes.get_node`
            spec).
        session: A configured :class:`repro.Session`; a cache-less
            default is created when omitted.  Models materialize once per
            ``(kind, width)`` through its registry — the node loop is
            pure post-hoc rescaling.
        data_type: Stimulus class for the normalized trace estimate.
        n_patterns: Stimulus patterns per estimate.
        seed: Stimulus seed.
        vdd/f_clk: Optional off-nominal operating point applied to every
            node (each node's nominals when omitted).
        progress: Optional line sink for per-model status.
    """
    from ..modules import make_module
    from ..signals import make_operand_streams, module_stimulus

    if session is None:
        import repro

        session = repro.Session()
    resolved = [get_node(node) for node in nodes]
    report = PaeReport(
        kinds=[str(k) for k in kinds],
        widths=[int(w) for w in widths],
        nodes=[node.name for node in resolved],
        data_type=data_type,
        n_patterns=int(n_patterns),
        seed=int(seed),
    )
    started = time.perf_counter()
    for kind in report.kinds:
        for width in report.widths:
            module = make_module(kind, width)
            streams = make_operand_streams(
                module, data_type, n_patterns, seed=seed + 1
            )
            bits = module_stimulus(module, streams)
            served = session.registry().get(kind, width)
            estimate = served.estimator.estimate_from_bits(bits)
            if progress is not None:
                progress(
                    f"{served.name}: {estimate.average_charge:.2f} "
                    f"charge units/cycle ({served.source})"
                )
            units = gate_area_units(module)
            for node in resolved:
                calibration = Calibration(node=node, vdd=vdd, f_clk=f_clk)
                physical = calibration.apply(estimate, netlist=module)
                report.cells.append(PaeCell(
                    kind=kind,
                    width=width,
                    node=node.name,
                    vdd=physical.vdd,
                    f_clk=physical.f_clk,
                    average_charge_units=physical.average_charge_units,
                    charge_coulombs=physical.charge_coulombs,
                    energy_joules=physical.energy_joules,
                    power_watts=physical.power_watts,
                    area_m2=physical.area_m2,
                    leakage_watts=physical.leakage_watts,
                    n_gates=module.netlist.n_gates,
                    gate_units=units,
                    source=served.source,
                ))
    report.seconds = time.perf_counter() - started
    return report


def render_pae(report: PaeReport) -> str:
    """Fixed-width table rendition (engineering units, SI envelope)."""
    from ..eval.report import format_table

    headers = [
        "module", "w", "node", "vdd", "f_clk", "E/op (pJ)", "P_dyn (uW)",
        "P_leak (uW)", "area (um^2)", "gates",
    ]
    rows = []
    for cell in report.cells:
        rows.append([
            cell.kind,
            cell.width,
            cell.node,
            f"{cell.vdd:.2f}",
            f"{cell.f_clk / 1e6:.0f}MHz",
            f"{cell.energy_joules * 1e12:.4f}",
            f"{cell.power_watts * 1e6:.2f}",
            f"{cell.leakage_watts * 1e6:.3f}",
            f"{cell.area_m2 * 1e12:.1f}",
            cell.n_gates,
        ])
    title = (
        f"PAE report (table v{TECH_TABLE_VERSION}): data type "
        f"{report.data_type}, {report.n_patterns} patterns, "
        f"seed {report.seed}"
    )
    return format_table(headers, rows, title=title)


def validate_pae(envelope: Dict[str, Any]) -> None:
    """Schema-check a :meth:`PaeReport.to_dict` envelope.

    Raises:
        ValueError: On any missing key, type mismatch, coverage hole
            (a requested combination without a cell) or non-finite /
            non-positive physical figure.
    """
    import math

    for key, expected in (
        ("report", str), ("version", int), ("table_version", int),
        ("kinds", list), ("widths", list), ("nodes", list),
        ("data_type", str), ("cells", list),
    ):
        if key not in envelope:
            raise ValueError(f"PAE envelope missing {key!r}")
        if not isinstance(envelope[key], expected):
            raise ValueError(
                f"PAE envelope {key!r} must be {expected.__name__}, got "
                f"{type(envelope[key]).__name__}"
            )
    if envelope["report"] != "pae":
        raise ValueError(f"not a PAE envelope: report={envelope['report']!r}")
    expected_cells = {
        (kind, width, node)
        for kind in envelope["kinds"]
        for width in envelope["widths"]
        for node in envelope["nodes"]
    }
    seen = set()
    numeric_keys = (
        "vdd", "f_clk", "average_charge_units", "charge_coulombs",
        "energy_joules", "power_watts", "area_m2", "leakage_watts",
    )
    for cell in envelope["cells"]:
        key = (cell.get("kind"), cell.get("width"), cell.get("node"))
        seen.add(key)
        for name in numeric_keys:
            value = cell.get(name)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ValueError(f"cell {key}: {name!r} must be numeric")
            if not math.isfinite(value) or value < 0:
                raise ValueError(
                    f"cell {key}: {name!r} must be finite and >= 0, got "
                    f"{value!r}"
                )
    missing = expected_cells - seen
    if missing:
        raise ValueError(
            f"PAE envelope misses {len(missing)} requested combinations, "
            f"first: {sorted(missing)[0]}"
        )
