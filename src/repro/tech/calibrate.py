"""The :class:`Calibration` object: one rescaling for every estimate shape.

A calibration is ``(node, vdd, f_clk)`` resolved against the
:mod:`~repro.tech.nodes` table.  It converts any normalized estimate the
stack produces — a point :class:`~repro.core.estimator.EstimationResult`
(trace, batch, distribution or analytic) or a streaming
:class:`~repro.serve.sessions.RunningEstimate` — into coulombs, joules
and watts, and a compiled netlist's gate inventory into area and leakage:

    Q_cycle [C] = charge_units · C_unit(node) · V_dd
    E_cycle [J] = charge_units · C_unit(node) · V_dd²
    P_dyn   [W] = E_cycle · f_clk
    A       [m²] = gate_units · A_unit(node)
    P_leak  [W] = gate_units · L_unit(node) · V_dd / V_nom

Three operating modes, strictly ordered by how much physics they add:

* ``Calibration()`` — the **identity**: no node, no voltage.
  :meth:`apply` returns its argument unchanged and
  :meth:`physical_block` returns ``None``, so the normalized path is
  bit-identical to a build that never imports this package (a fuzzed
  contract, ``check_calibration`` in docs/VERIFICATION.md).
* ``Calibration.from_spec(vdd=2.5)`` — **legacy voltage-only**: the
  exact numerics of the old ``repro.circuit.OperatingPoint`` (1 fF per
  unit), which this class absorbs — ``repro.circuit`` now serves that
  name through a warn-once deprecation shim.
* ``Calibration.from_spec(node="22nm")`` — **full node calibration**:
  capacitance/area/leakage from the table, ``vdd``/``f_clk`` defaulting
  to the node's nominals, off-nominal values following the Dennard-style
  rules documented in :mod:`~repro.tech.nodes`.

Calibration is post-hoc by design: nothing here touches characterization,
cache keys or the serving registry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Union

import numpy as np

from ..circuit.technology import GATE_TYPES
from ..circuit.units import CAP_UNIT_FARAD, OperatingPoint
from .nodes import TECH_TABLE_VERSION, TechNode, get_node

__all__ = [
    "CalibratedEstimate",
    "Calibration",
    "OperatingPoint",
    "gate_area_units",
]

#: Legacy default clock for voltage-only calibrations — the historical
#: ``OperatingPoint`` default, kept so old paths stay bit-identical.
LEGACY_F_CLK = 50e6


def gate_area_units(netlist: Any) -> float:
    """Size of a netlist in gate units (the capacitance-proxy inventory).

    Accepts a :class:`~repro.circuit.netlist.Netlist`, a
    :class:`~repro.circuit.compiled.CompiledNetlist` or a
    :class:`~repro.modules.library.DatapathModule`.  Each gate contributes
    its library cell's total pin capacitance (``n_inputs · input_cap +
    output_cap``) — the same normalized units the simulator counts charge
    in, so area and energy share one technology scale factor.
    """
    while not hasattr(netlist, "gates"):
        for attribute in ("netlist", "compiled"):
            inner = getattr(netlist, attribute, None)
            if inner is not None:
                netlist = inner
                break
        else:
            raise TypeError(
                f"cannot take a gate inventory of {type(netlist).__name__}"
            )
    total = 0.0
    for gate in netlist.gates:
        cell = GATE_TYPES[gate.type_name]
        total += cell.n_inputs * cell.input_cap + cell.output_cap
    return total


@dataclass(frozen=True)
class CalibratedEstimate:
    """A normalized estimate annotated with its physical-unit readings.

    Attributes:
        normalized: The untouched underlying estimate (an
            ``EstimationResult`` or ``RunningEstimate``).
        node: Node name, or ``None`` for a voltage-only calibration.
        vdd/f_clk: The resolved operating point.
        average_charge_units: The normalized mean cycle charge converted.
        charge_coulombs: Mean charge drawn per cycle.
        energy_joules: Mean energy per cycle (per op).
        power_watts: Average dynamic power at ``f_clk``.
        area_m2: Silicon area (node calibrations with a netlist only).
        leakage_watts: Static power (node calibrations with a netlist).
    """

    normalized: Any
    node: Optional[str]
    vdd: float
    f_clk: float
    average_charge_units: float
    charge_coulombs: float
    energy_joules: float
    power_watts: float
    area_m2: Optional[float] = None
    leakage_watts: Optional[float] = None

    @property
    def total_power_watts(self) -> float:
        """Dynamic plus leakage power (dynamic only without a netlist)."""
        return self.power_watts + (self.leakage_watts or 0.0)

    def to_dict(self) -> Dict[str, Any]:
        block = {
            "table_version": TECH_TABLE_VERSION,
            "node": self.node,
            "vdd": self.vdd,
            "f_clk": self.f_clk,
            "average_charge_units": self.average_charge_units,
            "charge_coulombs": self.charge_coulombs,
            "energy_joules": self.energy_joules,
            "power_watts": self.power_watts,
        }
        if self.area_m2 is not None:
            block["area_m2"] = self.area_m2
            block["leakage_watts"] = self.leakage_watts
            block["total_power_watts"] = self.total_power_watts
        return block


@dataclass(frozen=True)
class Calibration:
    """A resolved ``(node, vdd, f_clk)`` triple; see the module docstring.

    Build through :meth:`from_spec` (which resolves node names and
    defaults), or use the bare constructor with an already-resolved
    :class:`~repro.tech.nodes.TechNode`.
    """

    node: Optional[TechNode] = None
    vdd: Optional[float] = None
    f_clk: Optional[float] = None

    def __post_init__(self):
        if self.vdd is not None and not (self.vdd > 0):
            raise ValueError("vdd must be positive")
        if self.f_clk is not None and not (self.f_clk > 0):
            raise ValueError("f_clk must be positive")

    # ------------------------------------------------------------------
    @classmethod
    def from_spec(
        cls,
        node: Union[str, int, float, TechNode, None] = None,
        vdd: Optional[float] = None,
        f_clk: Optional[float] = None,
    ) -> "Calibration":
        """Resolve user-facing specs (CLI flags, request fields).

        Raises:
            ValueError: Unknown node name or non-positive vdd/f_clk.
        """
        resolved = None if node is None else get_node(node)
        return cls(
            node=resolved,
            vdd=None if vdd is None else float(vdd),
            f_clk=None if f_clk is None else float(f_clk),
        )

    # ------------------------------------------------------------------
    @property
    def is_identity(self) -> bool:
        """No node and no voltage: physical units are undefined."""
        return self.node is None and self.vdd is None

    @property
    def node_name(self) -> Optional[str]:
        return None if self.node is None else self.node.name

    @property
    def effective_vdd(self) -> float:
        if self.vdd is not None:
            return self.vdd
        if self.node is not None:
            return self.node.nominal_vdd
        raise ValueError(
            "identity calibration has no supply voltage; pass node= or vdd="
        )

    @property
    def effective_f_clk(self) -> float:
        if self.f_clk is not None:
            return self.f_clk
        if self.node is not None:
            return self.node.nominal_f_clk
        return LEGACY_F_CLK

    @property
    def cap_farad(self) -> float:
        """Farads per normalized charge unit under this calibration."""
        if self.node is not None:
            return self.node.cap_per_unit
        return CAP_UNIT_FARAD

    def operating_point(self) -> OperatingPoint:
        """The equivalent legacy ``OperatingPoint`` (voltage/clock only)."""
        return OperatingPoint(
            vdd=self.effective_vdd, f_clk=self.effective_f_clk
        )

    # ------------------------------------------------------------------
    # Scalar/array conversions (the CV² core)
    # ------------------------------------------------------------------
    def charge_coulombs(
        self, charge_units: Union[float, np.ndarray]
    ) -> Union[float, np.ndarray]:
        """Coulombs drawn for a normalized per-cycle charge figure."""
        return np.asarray(charge_units) * self.cap_farad * self.effective_vdd

    def energy_joules(
        self, charge_units: Union[float, np.ndarray]
    ) -> Union[float, np.ndarray]:
        """Joules dissipated for a normalized per-cycle charge figure."""
        return (
            np.asarray(charge_units) * self.cap_farad
            * self.effective_vdd**2
        )

    def power_watts(self, average_charge_units: float) -> float:
        """Average dynamic power for a mean per-cycle charge figure."""
        return (
            float(self.energy_joules(float(average_charge_units)))
            * self.effective_f_clk
        )

    # ------------------------------------------------------------------
    # Netlist inventory → area / leakage (node calibrations only)
    # ------------------------------------------------------------------
    def area_m2(self, netlist: Any) -> float:
        """Silicon area of a netlist's gate inventory at this node."""
        if self.node is None:
            raise ValueError("area requires a technology node (node=...)")
        return gate_area_units(netlist) * self.node.area_per_unit

    def leakage_watts(self, netlist: Any) -> float:
        """Static power of a netlist at this node and supply voltage."""
        if self.node is None:
            raise ValueError("leakage requires a technology node (node=...)")
        return gate_area_units(netlist) * self.node.scaled_leakage_per_unit(
            self.effective_vdd
        )

    # ------------------------------------------------------------------
    # Whole-estimate application
    # ------------------------------------------------------------------
    def apply(self, estimate: Any, netlist: Any = None) -> Any:
        """Calibrate any estimate shape the stack produces.

        Identity calibrations return ``estimate`` unchanged (the same
        object — the normalized path stays bit-identical).  Otherwise the
        result is a :class:`CalibratedEstimate` wrapping it; pass the
        module/netlist to also fill area and leakage (node mode only).
        """
        if self.is_identity:
            return estimate
        average = float(getattr(estimate, "average_charge"))
        area = leakage = None
        if netlist is not None and self.node is not None:
            units = gate_area_units(netlist)
            area = units * self.node.area_per_unit
            leakage = units * self.node.scaled_leakage_per_unit(
                self.effective_vdd
            )
        return CalibratedEstimate(
            normalized=estimate,
            node=self.node_name,
            vdd=self.effective_vdd,
            f_clk=self.effective_f_clk,
            average_charge_units=average,
            charge_coulombs=float(self.charge_coulombs(average)),
            energy_joules=float(self.energy_joules(average)),
            power_watts=self.power_watts(average),
            area_m2=area,
            leakage_watts=leakage,
        )

    def physical_block(
        self, average_charge_units: float, netlist: Any = None
    ) -> Optional[Dict[str, Any]]:
        """The self-describing envelope block for JSON surfaces.

        ``None`` for identity calibrations, so responses without a node
        or voltage stay byte-identical to the pre-calibration protocol.
        """
        if self.is_identity:
            return None

        class _Point:
            average_charge = float(average_charge_units)

        return self.apply(_Point(), netlist=netlist).to_dict()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "node": self.node_name,
            "vdd": None if self.is_identity else self.effective_vdd,
            "f_clk": self.f_clk if self.is_identity else self.effective_f_clk,
        }

    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Calibration":
        """Rebuild from :meth:`to_dict` (session snapshots)."""
        return cls.from_spec(
            node=data.get("node"),
            vdd=data.get("vdd"),
            f_clk=data.get("f_clk"),
        )
