"""The versioned technology-node table and its scaling rules.

One row per process node, 180 nm down to 22 nm.  The figures are
synthetic but shaped like the published trend lines (ITRS-era logic
scaling; compare the Charm adder model's node-indexed power densities and
ALADDIN's per-component tables): dynamic energy per gate unit
(``cap_per_unit * nominal_vdd**2``) and area per gate unit shrink
strictly monotonically with feature size, while per-gate leakage *grows*
— the classic end-of-Dennard picture.  The monotone-energy property is a
load-bearing contract: the differential fuzzer re-checks it on every
calibration case (docs/VERIFICATION.md).

Units are strict SI throughout: farads, volts, hertz, square metres,
watts.  A "gate unit" is the normalized capacitance unit the simulator
already counts charge in (one reference gate pin ≈ 1 fF at the 180 nm
anchor, :data:`~repro.circuit.units.CAP_UNIT_FARAD`).

Off-nominal operation uses Dennard-style rules, deliberately simple and
documented rather than device-accurate:

* dynamic energy   ``E ∝ C · V_dd²``          (exact CV² accounting);
* dynamic power    ``P ∝ E · f_clk``          (linear in frequency);
* leakage power    ``P_leak ∝ V_dd / V_nom``  (linearized subthreshold);
* max frequency    ``f_max ≈ f_nom · V_dd / V_nom`` (alpha-power, α≈1).

The table is versioned (:data:`TECH_TABLE_VERSION`) so persisted PAE
reports and serve envelopes can state which calibration produced them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Union

#: Bumped whenever any node constant changes; echoed into every PAE
#: report and physical-unit envelope so results are traceable to a table.
TECH_TABLE_VERSION = 1


@dataclass(frozen=True)
class TechNode:
    """One technology node of the calibration table.

    Attributes:
        name: Canonical name (``"45nm"``).
        feature_nm: Drawn feature size in nanometres.
        cap_per_unit: Farads represented by one normalized gate-capacitance
            unit at this node.
        nominal_vdd: Nominal supply voltage in volts.
        nominal_f_clk: Nominal clock frequency in hertz.
        area_per_unit: Square metres of silicon per gate unit.
        leakage_per_unit: Watts of leakage per gate unit at nominal V_dd.
    """

    name: str
    feature_nm: float
    cap_per_unit: float
    nominal_vdd: float
    nominal_f_clk: float
    area_per_unit: float
    leakage_per_unit: float

    def __post_init__(self):
        validate_node(self)

    @property
    def energy_per_unit(self) -> float:
        """Joules per switched gate unit at nominal V_dd (``C·V²``)."""
        return self.cap_per_unit * self.nominal_vdd**2

    def scaled_leakage_per_unit(self, vdd: float) -> float:
        """Leakage per gate unit at an off-nominal supply (linearized)."""
        if vdd <= 0:
            raise ValueError("vdd must be positive")
        return self.leakage_per_unit * (vdd / self.nominal_vdd)

    def max_frequency(self, vdd: float) -> float:
        """Alpha-power (α≈1) guidance for the fastest clock at ``vdd``."""
        if vdd <= 0:
            raise ValueError("vdd must be positive")
        return self.nominal_f_clk * (vdd / self.nominal_vdd)

    def to_dict(self) -> Dict[str, float]:
        return {
            "table_version": TECH_TABLE_VERSION,
            "name": self.name,
            "feature_nm": self.feature_nm,
            "cap_per_unit_farad": self.cap_per_unit,
            "nominal_vdd": self.nominal_vdd,
            "nominal_f_clk": self.nominal_f_clk,
            "area_per_unit_m2": self.area_per_unit,
            "leakage_per_unit_watt": self.leakage_per_unit,
        }


def validate_node(node: "TechNode") -> None:
    """Every physical constant of a node must be strictly positive.

    Raises:
        ValueError: On the first non-positive field.
    """
    for field_name in (
        "feature_nm", "cap_per_unit", "nominal_vdd", "nominal_f_clk",
        "area_per_unit", "leakage_per_unit",
    ):
        value = getattr(node, field_name)
        if not (value > 0):
            raise ValueError(
                f"node {node.name!r}: {field_name} must be positive, "
                f"got {value!r}"
            )
    if not node.name:
        raise ValueError("node name must be non-empty")


#: The version-1 table.  The 180 nm row anchors the normalized unit: one
#: gate unit is exactly :data:`~repro.circuit.units.CAP_UNIT_FARAD`
#: (1 fF) there, and successive nodes scale capacitance, voltage and area
#: down while leakage density climbs.
NODES: Dict[str, TechNode] = {
    node.name: node
    for node in (
        TechNode("180nm", 180.0, 1.00e-15, 1.8, 200e6, 1.00e-11, 10e-12),
        TechNode("130nm", 130.0, 0.70e-15, 1.3, 400e6, 5.20e-12, 30e-12),
        TechNode("90nm", 90.0, 0.48e-15, 1.2, 600e6, 2.50e-12, 80e-12),
        TechNode("65nm", 65.0, 0.33e-15, 1.1, 800e6, 1.30e-12, 150e-12),
        TechNode("45nm", 45.0, 0.23e-15, 1.0, 1.0e9, 6.50e-13, 250e-12),
        TechNode("32nm", 32.0, 0.16e-15, 0.9, 1.2e9, 3.30e-13, 350e-12),
        TechNode("22nm", 22.0, 0.11e-15, 0.8, 1.4e9, 1.70e-13, 450e-12),
    )
}


def node_names() -> List[str]:
    """Node names ordered from the largest feature size to the smallest."""
    return [
        node.name
        for node in sorted(NODES.values(), key=lambda n: -n.feature_nm)
    ]


def get_node(spec: Union[str, int, float, TechNode]) -> TechNode:
    """Resolve a node spec — ``"45nm"``, ``"45"``, ``45`` — to its row.

    Raises:
        ValueError: If the spec names no node in the table.
    """
    if isinstance(spec, TechNode):
        return spec
    name = str(spec).strip().lower()
    if not name.endswith("nm"):
        name += "nm"
    # "45.0nm" and "45nm" both hit the 45 nm row.
    normalized = name[:-2]
    try:
        normalized = f"{float(normalized):g}"
    except ValueError:
        pass
    name = normalized + "nm"
    try:
        return NODES[name]
    except KeyError:
        raise ValueError(
            f"unknown technology node {spec!r}; known: {node_names()}"
        ) from None
