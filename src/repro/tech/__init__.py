"""Technology calibration: normalized charge → coulombs/joules/watts/area.

The characterization stack (ROADMAP item 4) answers everything in
normalized switched-capacitance units — 1 unit is the capacitance of a
reference gate pin.  That is exactly what the paper needs (only relative
errors are ever compared), but deployment questions are physical:
*"energy per op of a 16-bit CSA multiplier at 22 nm vs 45 nm"*.  This
package is the per-technology constant factor that turns one
characterized Hd macro-model into answers across process nodes, the same
way per-component technology tables drive pre-RTL accelerator estimators
(ALADDIN's per-cycle-time component tables, the Charm adder model's
node-indexed power densities):

* :mod:`nodes` — a versioned table of technology nodes (180 nm → 22 nm)
  carrying capacitance-per-gate-unit, nominal V_dd/f_clk, area-per-gate-
  unit and per-gate-unit leakage, plus Dennard-style scaling rules for
  off-nominal voltage and frequency;
* :mod:`calibrate` — the :class:`Calibration` object mapping any
  normalized estimate (point, batch, distribution, analytic, streaming
  session) to physical units, and a compiled netlist's gate inventory to
  area and leakage.  ``node=None`` is the identity: the normalized path
  is bit-identical to a build without this package;
* :mod:`report` — the power-area-energy (PAE) report generator sweeping
  module families across nodes and widths (``repro-power report pae``).

Calibration is **post-hoc**: models, cache keys and registry entries are
node-independent; a node only rescales results on the way out.  See
docs/TECHNOLOGY.md for the table schema and the calibration math.
"""

from ..circuit.units import CAP_UNIT_FARAD, OperatingPoint
from .calibrate import CalibratedEstimate, Calibration, gate_area_units
from .nodes import (
    NODES,
    TECH_TABLE_VERSION,
    TechNode,
    get_node,
    node_names,
    validate_node,
)
from .report import (
    PAE_REPORT_VERSION,
    PaeCell,
    PaeReport,
    pae_report,
    render_pae,
    validate_pae,
)

__all__ = [
    "CAP_UNIT_FARAD",
    "CalibratedEstimate",
    "Calibration",
    "NODES",
    "OperatingPoint",
    "PAE_REPORT_VERSION",
    "PaeCell",
    "PaeReport",
    "TECH_TABLE_VERSION",
    "TechNode",
    "gate_area_units",
    "get_node",
    "node_names",
    "pae_report",
    "render_pae",
    "validate_node",
    "validate_pae",
]
