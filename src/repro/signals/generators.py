"""Core stimulus generators: random, counter and Gaussian AR processes.

These are the synthetic stand-ins for the paper's recorded stimuli
(DESIGN.md section 2): the power model only sees a stream through its
bit-level and word-level statistics, so matching those statistics preserves
the experiments' behaviour.
"""

from __future__ import annotations

import numpy as np

from .encoding import saturate, signed_range
from .streams import PatternStream


def random_stream(width: int, n: int, seed: int = 0) -> PatternStream:
    """Data type I: i.i.d. uniform words over the full signed range.

    This is also the characterization stream: every bit has signal and
    transition probability 1/2.
    """
    rng = np.random.default_rng(seed)
    lo, hi = signed_range(width)
    words = rng.integers(lo, hi + 1, size=n, dtype=np.int64)
    return PatternStream(words, width, "random")


def counter_stream(width: int, n: int, start: int = 0) -> PatternStream:
    """Data type V: outputs of a binary counter.

    Counts through the non-negative half of the signed range so the sign
    bits stay constant zero — the property the paper identifies as the
    failure mode of the basic Hd-model (Section 4.2).
    """
    period = 1 << (width - 1)
    words = (start + np.arange(n, dtype=np.int64)) % period
    return PatternStream(words, width, "counter")


def ar1_gaussian(
    n: int,
    rho: float,
    sigma: float,
    mu: float = 0.0,
    seed: int = 0,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Stationary lag-1 autoregressive Gaussian process.

    ``x_t - mu = rho (x_{t-1} - mu) + sqrt(1 - rho^2) sigma e_t`` with
    standard normal innovations; the marginal distribution is
    ``N(mu, sigma^2)`` and the lag-1 autocorrelation is ``rho`` — the exact
    word-level statistics the Landman data model consumes.
    """
    if not -1.0 < rho < 1.0:
        raise ValueError("rho must be in (-1, 1)")
    if rng is None:
        rng = np.random.default_rng(seed)
    innovations = rng.standard_normal(n) * sigma * np.sqrt(1.0 - rho * rho)
    x = np.empty(n, dtype=np.float64)
    prev = rng.standard_normal() * sigma  # stationary start
    for t in range(n):
        prev = rho * prev + innovations[t]
        x[t] = prev
    return x + mu


def gaussian_stream(
    width: int,
    n: int,
    rho: float,
    relative_sigma: float = 0.25,
    mu_fraction: float = 0.0,
    seed: int = 0,
    name: str = "gaussian",
) -> PatternStream:
    """Linear-quantized AR(1) Gaussian stream.

    Args:
        width: Word width.
        n: Number of samples.
        rho: Lag-1 autocorrelation of the underlying process.
        relative_sigma: Standard deviation as a fraction of full scale
            (``2^(width-1)``).
        mu_fraction: Mean as a fraction of full scale.
        seed: RNG seed.
        name: Stream label.
    """
    full_scale = float(1 << (width - 1))
    x = ar1_gaussian(
        n, rho, sigma=relative_sigma * full_scale, mu=mu_fraction * full_scale,
        seed=seed,
    )
    return PatternStream(saturate(x, width), width, name)


def ramp_stream(width: int, n: int, step: int = 1) -> PatternStream:
    """Sawtooth over the full signed range (auxiliary test stimulus)."""
    lo, hi = signed_range(width)
    span = hi - lo + 1
    words = lo + ((np.arange(n, dtype=np.int64) * step) % span)
    return PatternStream(words, width, "ramp")


def constant_stream(width: int, n: int, value: int = 0) -> PatternStream:
    """A constant word repeated n times (Hd = 0 every cycle)."""
    lo, hi = signed_range(width)
    if not lo <= value <= hi:
        raise ValueError(f"value {value} out of signed {width}-bit range")
    return PatternStream(np.full(n, value, dtype=np.int64), width, "constant")
