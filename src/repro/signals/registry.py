"""Data-type registry: the paper's stimulus classes I–V.

Section 4.2 of the paper classifies its pattern sets as:

* I   — random patterns (same statistics as the characterization stream)
* II  — linear-quantized music signals (weak correlation)
* III — linear-quantized speech signals (strong correlation)
* IV  — video signals (strong correlation)
* V   — outputs of a binary counter

:func:`make_stream` builds the synthetic equivalent of one class;
:func:`make_operand_streams` builds one independent stream per module operand
(the paper treats multi-input streams as uncorrelated, Section 6.3).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

from ..modules.library import DatapathModule
from .audio import music_stream, speech_stream
from .generators import counter_stream, random_stream
from .streams import PatternStream
from .video import video_stream

DATA_TYPES: Tuple[str, ...] = ("I", "II", "III", "IV", "V")

_GENERATORS: Dict[str, Callable[[int, int, int], PatternStream]] = {
    "I": lambda width, n, seed: random_stream(width, n, seed),
    "II": lambda width, n, seed: music_stream(width, n, seed),
    "III": lambda width, n, seed: speech_stream(width, n, seed),
    "IV": lambda width, n, seed: video_stream(width, n, seed),
    "V": lambda width, n, seed: counter_stream(width, n, start=seed % 7),
}

DATA_TYPE_DESCRIPTIONS: Dict[str, str] = {
    "I": "random patterns (characterization statistics)",
    "II": "linear quantized music signals (weak correlation)",
    "III": "linear quantized speech signals (strong correlation)",
    "IV": "video signals (strong correlation)",
    "V": "outputs of a binary counter",
}


def make_stream(data_type: str, width: int, n: int, seed: int = 0) -> PatternStream:
    """Build one stream of the given data-type class.

    Args:
        data_type: One of ``"I".."V"``.
        width: Word width in bits.
        n: Number of samples.
        seed: RNG seed (different seeds give different realizations of the
            same statistics class).
    """
    try:
        generator = _GENERATORS[data_type]
    except KeyError:
        raise KeyError(
            f"unknown data type {data_type!r}; known: {list(DATA_TYPES)}"
        ) from None
    stream = generator(width, n, seed)
    return PatternStream(stream.words, width, f"{data_type}:{stream.name}")


def make_operand_streams(
    module: DatapathModule, data_type: str, n: int, seed: int = 0
) -> List[PatternStream]:
    """One independent stream per module operand.

    Operand streams use decorrelated seeds; control-like operands (op codes,
    shift amounts, selects — anything narrower than 4 bits) get random
    patterns since data-statistics classes do not apply to them.
    """
    streams: List[PatternStream] = []
    for index, (name, width) in enumerate(module.operand_specs):
        operand_seed = seed * 7919 + index * 104729 + 13
        if width < 4:
            streams.append(random_stream(width, n, operand_seed))
        else:
            streams.append(make_stream(data_type, width, n, operand_seed))
    return streams
