"""Synthetic audio stimuli: music (data type II) and speech (data type III).

The paper used linear-quantized recordings; what the experiments actually
exercise is the *correlation class* of each stream — "weak correlation" for
music and "strong correlation" for speech.  The generators below synthesize
signals with those properties:

* Music: a mix of sustained partials (chord-like sinusoids with slow vibrato)
  over a weakly-correlated noise floor; lag-1 autocorrelation ≈ 0.4–0.7.
* Speech: an AR(2) resonator ("formant") driven by voiced/unvoiced excitation
  with a syllable-rate amplitude envelope; lag-1 autocorrelation ≈ 0.9–0.98
  plus the bursty amplitude modulation typical of speech.
"""

from __future__ import annotations

import numpy as np

from .encoding import saturate
from .streams import PatternStream


def music_stream(
    width: int,
    n: int,
    seed: int = 0,
    relative_level: float = 0.28,
) -> PatternStream:
    """Data type II: weakly correlated music-like signal.

    A three-partial chord with independent slow amplitude/frequency drift
    plus a broadband noise floor.  The relatively high fundamental
    frequencies keep the sample-to-sample correlation weak.
    """
    rng = np.random.default_rng(seed)
    t = np.arange(n, dtype=np.float64)
    full_scale = float(1 << (width - 1))
    signal = np.zeros(n)
    # Partials at incommensurate mid-band normalized frequencies: high
    # enough that the correlation stays weak, low enough that it is clearly
    # positive (rho ~ 0.4-0.6), between random (I) and speech (III).
    for base_freq in (0.055, 0.074, 0.118):
        freq = base_freq * (1.0 + 0.01 * np.sin(2 * np.pi * t / (997 + seed % 101)))
        phase = rng.uniform(0, 2 * np.pi)
        envelope = 1.0 + 0.3 * np.sin(2 * np.pi * t / rng.uniform(1500, 4000))
        signal += envelope * np.sin(2 * np.pi * freq * t + phase)
    signal /= 3.0
    noise = rng.standard_normal(n) * 0.25
    x = (signal + noise) * relative_level * full_scale
    return PatternStream(saturate(x, width), width, "music")


def speech_stream(
    width: int,
    n: int,
    seed: int = 0,
    relative_level: float = 0.28,
) -> PatternStream:
    """Data type III: strongly correlated speech-like signal.

    AR(2) resonator (poles near z = r e^{±jw} with small w, so the output is
    low-pass and strongly correlated) excited by noise whose amplitude
    follows a syllable-rate on/off envelope — quiet gaps and voiced bursts.
    """
    rng = np.random.default_rng(seed)
    full_scale = float(1 << (width - 1))

    # Syllable envelope: smoothed two-state (silence / voiced) Markov chain.
    state = np.empty(n)
    level, target = 0.2, 1.0
    current = 0.2
    for i in range(n):
        if rng.random() < 1.0 / 400.0:  # switch roughly every 400 samples
            target = 1.0 if target < 0.5 else 0.15
        current += (target - current) * 0.02
        state[i] = current

    # AR(2) resonator: x_t = a1 x_{t-1} + a2 x_{t-2} + e_t.
    r, w = 0.97, 0.06 * np.pi
    a1, a2 = 2 * r * np.cos(w), -(r * r)
    e = rng.standard_normal(n) * state
    x = np.empty(n)
    x_1 = x_2 = 0.0
    for tstep in range(n):
        value = a1 * x_1 + a2 * x_2 + e[tstep]
        x[tstep] = value
        x_2, x_1 = x_1, value
    x = x / (np.std(x) + 1e-12) * relative_level * full_scale
    return PatternStream(saturate(x, width), width, "speech")
