"""Stimulus generation: pattern streams and the data-type classes I-V."""

from .audio import music_stream, speech_stream
from .codes import (
    bus_invert_bits,
    encode_words,
    gray_bits,
    gray_decode,
    gray_encode,
    sign_magnitude_bits,
    twos_complement_bits,
)
from .encoding import (
    bits_to_words,
    saturate,
    signed_range,
    to_signed,
    to_unsigned,
    words_to_bits,
)
from .generators import (
    ar1_gaussian,
    constant_stream,
    counter_stream,
    gaussian_stream,
    ramp_stream,
    random_stream,
)
from .registry import (
    DATA_TYPE_DESCRIPTIONS,
    DATA_TYPES,
    make_operand_streams,
    make_stream,
)
from .streams import PatternStream, module_stimulus
from .video import video_stream

__all__ = [
    "DATA_TYPES",
    "DATA_TYPE_DESCRIPTIONS",
    "PatternStream",
    "ar1_gaussian",
    "bits_to_words",
    "bus_invert_bits",
    "constant_stream",
    "counter_stream",
    "encode_words",
    "gaussian_stream",
    "gray_bits",
    "gray_decode",
    "gray_encode",
    "make_operand_streams",
    "make_stream",
    "module_stimulus",
    "music_stream",
    "ramp_stream",
    "random_stream",
    "saturate",
    "sign_magnitude_bits",
    "signed_range",
    "speech_stream",
    "to_signed",
    "to_unsigned",
    "twos_complement_bits",
    "video_stream",
    "words_to_bits",
]
