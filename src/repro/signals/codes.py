"""Alternative bus/number encodings for switching-activity optimization.

The paper's introduction places the Hd model in the context of high-level
low-power optimization [5-8]: techniques that reorder, re-encode or re-bind
data to minimize the switching activity presented to datapath components
and buses.  This module provides the classic encodings such studies
compare:

* two's complement (the default of :mod:`repro.signals.encoding`),
* sign-magnitude — decorrelated LSBs keep toggling, but the upper bits of
  small-magnitude signed streams stop oscillating between all-0 and all-1,
* Gray code — consecutive integers differ in exactly one bit (ideal for
  counter-like streams),
* bus-invert — one extra line signals word inversion whenever that halves
  the Hamming distance (Stan & Burleson's I/O coding).

Combined with the Hd macro-model these quantify, per component and stream,
what an encoding choice is worth in charge — the paper's use case.
"""

from __future__ import annotations

import numpy as np

from .encoding import signed_range, to_unsigned, words_to_bits


def gray_encode(patterns: np.ndarray) -> np.ndarray:
    """Binary-reflected Gray code of unsigned patterns."""
    patterns = np.asarray(patterns, dtype=np.int64)
    if np.any(patterns < 0):
        raise ValueError("gray_encode expects unsigned patterns")
    return patterns ^ (patterns >> 1)


def gray_decode(codes: np.ndarray) -> np.ndarray:
    """Inverse of :func:`gray_encode`."""
    codes = np.asarray(codes, dtype=np.int64)
    if np.any(codes < 0):
        raise ValueError("gray_decode expects unsigned codes")
    # Prefix-XOR fold: result = codes ^ (codes >> 1) ^ (codes >> 2) ^ ...
    result = codes.copy()
    shift = 1
    while True:
        shifted = result >> shift
        if not shifted.any():
            break
        result = result ^ shifted
        shift *= 2
    return result


def sign_magnitude_bits(words: np.ndarray, width: int) -> np.ndarray:
    """Sign-magnitude bit matrix of signed words (LSB-first, sign last).

    The most negative two's-complement value has no sign-magnitude
    representation in the same width and is saturated to ``-(2^(w-1)-1)``.
    """
    words = np.asarray(words, dtype=np.int64)
    lo, hi = signed_range(width)
    if np.any(words < lo) or np.any(words > hi):
        raise ValueError(f"words out of signed range for width {width}")
    magnitude = np.minimum(np.abs(words), hi)
    sign = (words < 0).astype(np.int64)
    patterns = magnitude | (sign << (width - 1))
    return ((patterns[:, None] >> np.arange(width)) & 1).astype(bool)


def gray_bits(words: np.ndarray, width: int) -> np.ndarray:
    """Gray-coded bit matrix of signed words (offset-binary then Gray)."""
    patterns = to_unsigned(words, width)
    # Offset binary orders words monotonically so consecutive values map
    # to adjacent Gray codes.
    offset = (patterns + (1 << (width - 1))) & ((1 << width) - 1)
    return (
        (gray_encode(offset)[:, None] >> np.arange(width)) & 1
    ).astype(bool)


def twos_complement_bits(words: np.ndarray, width: int) -> np.ndarray:
    """Plain two's-complement bit matrix (the baseline encoding)."""
    return words_to_bits(words, width, signed=True)


def bus_invert_bits(bits: np.ndarray) -> np.ndarray:
    """Bus-invert coding of a bit-matrix stream.

    Appends one invert line; each word is transmitted inverted whenever
    that reduces the Hamming distance to the previously transmitted word.
    By construction the per-cycle Hd is at most ``(w + 1) / 2``.
    """
    bits = np.asarray(bits, dtype=bool)
    n, width = bits.shape
    out = np.empty((n, width + 1), dtype=bool)
    previous = np.zeros(width + 1, dtype=bool)
    for j in range(n):
        plain = np.concatenate([bits[j], [False]])
        inverted = np.concatenate([~bits[j], [True]])
        if (plain != previous).sum() <= (inverted != previous).sum():
            previous = plain
        else:
            previous = inverted
        out[j] = previous
    return out


ENCODERS = {
    "twos_complement": twos_complement_bits,
    "sign_magnitude": sign_magnitude_bits,
    "gray": gray_bits,
}


def encode_words(words: np.ndarray, width: int, code: str) -> np.ndarray:
    """Encode signed words with a named bus code.

    Args:
        words: Signed words.
        width: Word width.
        code: One of ``"twos_complement"``, ``"sign_magnitude"``,
            ``"gray"``.
    """
    try:
        encoder = ENCODERS[code]
    except KeyError:
        raise KeyError(
            f"unknown code {code!r}; known: {sorted(ENCODERS)}"
        ) from None
    return encoder(words, width)
