"""Synthetic video stimulus (data type IV).

Models the luminance samples of a raster-scanned image sequence: piecewise
smooth within a scanline (objects), sharp edges between objects, strong
line-to-line similarity, and occasional scene changes.  The resulting stream
has strong short-lag correlation with heavier tails than the Gaussian audio
models — the "video" statistics class of the paper's Table 1.
"""

from __future__ import annotations

import numpy as np

from .encoding import saturate
from .streams import PatternStream


def video_stream(
    width: int,
    n: int,
    seed: int = 0,
    line_length: int = 64,
    relative_level: float = 0.35,
) -> PatternStream:
    """Data type IV: scanline video-like signal.

    Args:
        width: Word width.
        n: Number of samples.
        seed: RNG seed.
        line_length: Samples per scanline.
        relative_level: Signal amplitude relative to full scale.
    """
    rng = np.random.default_rng(seed)
    full_scale = float(1 << (width - 1))
    n_lines = (n + line_length - 1) // line_length

    samples = np.empty(n_lines * line_length, dtype=np.float64)
    # Reference line: a few flat segments ("objects") with random levels.
    def fresh_line() -> np.ndarray:
        line = np.empty(line_length)
        pos = 0
        while pos < line_length:
            seg = int(rng.integers(6, 24))
            level = rng.uniform(-1.0, 1.0)
            line[pos : pos + seg] = level
            pos += seg
        return line

    reference = fresh_line()
    for li in range(n_lines):
        if rng.random() < 0.02:  # scene change
            reference = fresh_line()
        else:
            # Slight vertical drift of the object levels plus jitter.
            reference = reference + rng.standard_normal(line_length) * 0.01
            if rng.random() < 0.3:  # object motion: shift by one pixel
                shift = int(rng.integers(-1, 2))
                reference = np.roll(reference, shift)
        noisy = reference + rng.standard_normal(line_length) * 0.02
        samples[li * line_length : (li + 1) * line_length] = noisy

    x = samples[:n] * relative_level * full_scale
    return PatternStream(saturate(x, width), width, "video")
