"""Pattern streams: the unit of stimulus in every experiment.

A :class:`PatternStream` is a named, seeded sequence of signed words of a
fixed width.  Streams are combined per operand with
:func:`module_stimulus` to form the module input bit matrix whose
consecutive-vector Hamming distances drive the power model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..modules.library import DatapathModule
from .encoding import signed_range, to_unsigned, words_to_bits


@dataclass(frozen=True)
class PatternStream:
    """A sequence of signed data words.

    Attributes:
        words: Signed integers, ``int64``.
        width: Word width in bits (two's complement).
        name: Label, e.g. ``"speech"`` or ``"I"``.
    """

    words: np.ndarray
    width: int
    name: str = ""

    def __post_init__(self):
        words = np.asarray(self.words, dtype=np.int64)
        object.__setattr__(self, "words", words)
        lo, hi = signed_range(self.width)
        if words.size and (words.min() < lo or words.max() > hi):
            raise ValueError(
                f"stream {self.name!r} words exceed signed {self.width}-bit range"
            )

    def __len__(self) -> int:
        return len(self.words)

    def bits(self) -> np.ndarray:
        """LSB-first ``[n, width]`` boolean bit matrix."""
        return words_to_bits(self.words, self.width, signed=True)

    def unsigned(self) -> np.ndarray:
        """Unsigned bit-pattern values (for golden-function evaluation)."""
        return to_unsigned(self.words, self.width)

    def requantized(self, width: int) -> "PatternStream":
        """Rescale this stream to another word width.

        The word values are scaled by ``2^(width - self.width)`` so the
        *relative* signal statistics (σ / full-scale, ρ) are preserved — this
        is how one recorded signal serves the 8/12/16-bit module variants of
        Table 1.
        """
        if width == self.width:
            return self
        shift = width - self.width
        if shift > 0:
            words = self.words << shift
        else:
            words = self.words >> (-shift)
        lo, hi = signed_range(width)
        return PatternStream(np.clip(words, lo, hi), width, self.name)


def module_stimulus(
    module: DatapathModule, streams: Sequence[PatternStream]
) -> np.ndarray:
    """Build the module input bit matrix from one stream per operand.

    Args:
        module: Target module.
        streams: One stream per operand, each matching the operand width;
            streams longer than the shortest are truncated to equal length.

    Returns:
        ``[n_patterns, module.input_bits]`` boolean matrix.
    """
    if len(streams) != module.n_operands:
        raise ValueError(
            f"{module.kind} needs {module.n_operands} streams, got {len(streams)}"
        )
    n = min(len(s) for s in streams)
    unsigned = []
    for (name, width), stream in zip(module.operand_specs, streams):
        if stream.width != width:
            raise ValueError(
                f"operand {name!r} is {width} bits but stream "
                f"{stream.name!r} is {stream.width} bits"
            )
        unsigned.append(stream.unsigned()[:n])
    return module.pack_inputs(*unsigned)
