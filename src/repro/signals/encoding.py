"""Two's-complement word/bit encoding utilities.

Bit matrices throughout the package are LSB-first boolean arrays of shape
``[n_patterns, width]``.
"""

from __future__ import annotations

import numpy as np


def signed_range(width: int) -> tuple[int, int]:
    """Inclusive (min, max) of a signed ``width``-bit word."""
    if width < 1:
        raise ValueError("width must be >= 1")
    return -(1 << (width - 1)), (1 << (width - 1)) - 1


def to_unsigned(words: np.ndarray, width: int) -> np.ndarray:
    """Map signed words to their unsigned bit-pattern values.

    Raises:
        ValueError: If any word is outside the signed range of ``width``.
    """
    words = np.asarray(words, dtype=np.int64)
    lo, hi = signed_range(width)
    if np.any(words < lo) or np.any(words > hi):
        raise ValueError(f"words out of signed range [{lo}, {hi}] for width {width}")
    return np.where(words < 0, words + (1 << width), words).astype(np.int64)


def to_signed(patterns: np.ndarray, width: int) -> np.ndarray:
    """Map unsigned bit patterns back to signed words."""
    patterns = np.asarray(patterns, dtype=np.int64)
    if np.any(patterns < 0) or np.any(patterns >= (1 << width)):
        raise ValueError(f"patterns out of range for width {width}")
    half = 1 << (width - 1)
    return np.where(patterns >= half, patterns - (1 << width), patterns)


def words_to_bits(words: np.ndarray, width: int, signed: bool = True) -> np.ndarray:
    """Encode words as an LSB-first boolean bit matrix.

    Args:
        words: Integer array; signed two's complement when ``signed``,
            otherwise raw unsigned patterns.
        width: Word width in bits.
        signed: Interpretation of ``words``.

    Returns:
        ``[len(words), width]`` boolean matrix.
    """
    patterns = to_unsigned(words, width) if signed else np.asarray(words, np.int64)
    if not signed and (np.any(patterns < 0) or np.any(patterns >= (1 << width))):
        raise ValueError(f"unsigned words out of range for width {width}")
    return ((patterns[:, None] >> np.arange(width)) & 1).astype(bool)


def bits_to_words(bits: np.ndarray, signed: bool = True) -> np.ndarray:
    """Decode an LSB-first bit matrix back to words."""
    bits = np.asarray(bits, dtype=bool)
    width = bits.shape[1]
    patterns = (bits.astype(np.int64) << np.arange(width)).sum(axis=1)
    return to_signed(patterns, width) if signed else patterns


def saturate(values: np.ndarray, width: int) -> np.ndarray:
    """Clamp real values into the signed range and round to integers.

    This is the "linear quantization" of the paper's data streams: an
    analog-ish signal scaled into a ``width``-bit two's-complement word.
    """
    lo, hi = signed_range(width)
    return np.clip(np.rint(np.asarray(values, dtype=np.float64)), lo, hi).astype(
        np.int64
    )
