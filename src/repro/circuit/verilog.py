"""Structural Verilog export/import for generated netlists.

The generators produce netlists an engineer may want to inspect, synthesize
or hand to another power tool; :func:`to_verilog` writes a flat structural
module over a small cell library (one primitive per
:mod:`repro.circuit.technology` gate type), and :func:`from_verilog` parses
that same subset back — the round trip is exact up to net renaming.

The emitted dialect is deliberately tiny: one ``module``, ``input``/
``output``/``wire`` declarations, constant assigns (``1'b0``/``1'b1``),
and cell instantiations with named port connections ``.A/.B/.C/.Y``.
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

from .netlist import CONST0, CONST1, Gate, Netlist
from .technology import GATE_TYPES

_PIN_NAMES = ("A", "B", "C")


def _net_token(netlist: Netlist, net: int) -> str:
    if net == CONST0:
        return "const0"
    if net == CONST1:
        return "const1"
    if net in netlist.net_names:
        sanitized = re.sub(r"[^A-Za-z0-9_]", "_", netlist.net_names[net])
        return f"n{net}_{sanitized}"
    return f"n{net}"


def to_verilog(netlist: Netlist, module_name: str | None = None) -> str:
    """Render a netlist as flat structural Verilog.

    Args:
        netlist: A validated netlist.
        module_name: Verilog module name; defaults to the netlist name.
    """
    name = module_name or re.sub(r"[^A-Za-z0-9_]", "_", netlist.name)
    inputs = [_net_token(netlist, n) for n in netlist.inputs]
    driver = netlist.driver_of()

    # Outputs need dedicated port nets: a gate-driven net may be both an
    # internal wire and an output; emit assigns for aliased outputs.
    out_tokens: List[str] = []
    assigns: List[str] = []
    for index, net in enumerate(netlist.outputs):
        port = f"out{index}"
        out_tokens.append(port)
        assigns.append(f"  assign {port} = {_net_token(netlist, net)};")

    lines: List[str] = []
    lines.append(f"module {name} (")
    ports = [f"  input  wire {tok}" for tok in inputs]
    ports += [f"  output wire {tok}" for tok in out_tokens]
    lines.append(",\n".join(ports))
    lines.append(");")
    lines.append("  wire const0;")
    lines.append("  wire const1;")
    lines.append("  assign const0 = 1'b0;")
    lines.append("  assign const1 = 1'b1;")
    internal = sorted(
        {g.output for g in netlist.gates} - set(netlist.inputs)
    )
    for net in internal:
        lines.append(f"  wire {_net_token(netlist, net)};")
    for index, gate in enumerate(netlist.gates):
        pins = [
            f".{_PIN_NAMES[k]}({_net_token(netlist, pin)})"
            for k, pin in enumerate(gate.inputs)
        ]
        pins.append(f".Y({_net_token(netlist, gate.output)})")
        lines.append(
            f"  {gate.type_name} u{index} ({', '.join(pins)});"
        )
    lines.extend(assigns)
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


_MODULE_RE = re.compile(
    r"module\s+(?P<name>\w+)\s*\((?P<ports>.*?)\);(?P<body>.*)endmodule",
    re.DOTALL,
)
_PORT_RE = re.compile(r"(input|output)\s+wire\s+(\w+)")
_INST_RE = re.compile(
    r"(?P<cell>[A-Z][A-Z0-9]*)\s+(?P<inst>\w+)\s*\((?P<pins>[^;]*)\)\s*;"
)
_PIN_RE = re.compile(r"\.(\w+)\(\s*(\w+)\s*\)")
_ASSIGN_RE = re.compile(r"assign\s+(\w+)\s*=\s*([\w']+)\s*;")


def from_verilog(text: str) -> Netlist:
    """Parse structural Verilog written by :func:`to_verilog`.

    Returns:
        A validated :class:`Netlist` equivalent to the original (net ids
        are re-assigned; output aliasing via ``assign`` is resolved, with a
        BUF inserted where an output directly aliases an input or
        constant).
    """
    match = _MODULE_RE.search(text)
    if not match:
        raise ValueError("no module found")
    ports_text, body = match.group("ports"), match.group("body")

    input_names: List[str] = []
    output_names: List[str] = []
    for direction, port in _PORT_RE.findall(ports_text):
        (input_names if direction == "input" else output_names).append(port)

    name_to_net: Dict[str, int] = {"const0": CONST0, "const1": CONST1}
    next_net = 2

    def net_of(token: str) -> int:
        nonlocal next_net
        if token == "1'b0":
            return CONST0
        if token == "1'b1":
            return CONST1
        if token not in name_to_net:
            name_to_net[token] = next_net
            next_net += 1
        return name_to_net[token]

    inputs = [net_of(tok) for tok in input_names]

    gates: List[Gate] = []
    for inst in _INST_RE.finditer(body):
        cell = inst.group("cell")
        if cell not in GATE_TYPES:
            raise ValueError(f"unknown cell {cell!r}")
        pins = dict(_PIN_RE.findall(inst.group("pins")))
        if "Y" not in pins:
            raise ValueError(f"instance {inst.group('inst')} has no .Y pin")
        n_in = GATE_TYPES[cell].n_inputs
        ins = []
        for k in range(n_in):
            pin = _PIN_NAMES[k]
            if pin not in pins:
                raise ValueError(
                    f"instance {inst.group('inst')} missing pin .{pin}"
                )
            ins.append(net_of(pins[pin]))
        gates.append(Gate(cell, tuple(ins), net_of(pins["Y"])))

    # Resolve assigns: alias map from LHS name to RHS net.
    alias: Dict[str, str] = {}
    for lhs, rhs in _ASSIGN_RE.findall(body):
        if lhs in ("const0", "const1"):
            continue
        alias[lhs] = rhs

    driven = {g.output for g in gates} | set(inputs) | {CONST0, CONST1}
    outputs: List[int] = []
    for port in output_names:
        target = alias.get(port, port)
        net = net_of(target)
        if net in (CONST0, CONST1) or net in inputs:
            # Output directly aliases an input/constant: legalize with BUF.
            buf_out = next_net
            next_net += 1
            gates.append(Gate("BUF", (net,), buf_out))
            net = buf_out
        outputs.append(net)

    netlist = Netlist(
        name=match.group("name"),
        n_nets=next_net,
        inputs=inputs,
        outputs=outputs,
        gates=gates,
    )
    netlist.validate()
    return netlist
