"""Physical-unit conversion for normalized charge figures.

The simulator reports *switched capacitance* in normalized units (1 unit =
``CAP_UNIT_FARAD``).  The paper treats power and charge as synonymous up to
a constant factor; these helpers make that factor explicit so estimates can
be reported in watts for a chosen supply voltage and clock frequency:

    Q_cycle [C]  = switched_cap * CAP_UNIT_FARAD * VDD
    E_cycle [J]  = switched_cap * CAP_UNIT_FARAD * VDD^2
    P_avg   [W]  = E_cycle * f_clk

This module is the low-level home of the conversion; the public surface
is :mod:`repro.tech`, whose :class:`~repro.tech.Calibration` generalizes
:class:`OperatingPoint` across technology nodes (per-node capacitance,
area and leakage tables).  Importing ``OperatingPoint`` from
``repro.circuit`` is deprecated (warn-once shim); import it from
``repro.tech`` instead.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Capacitance represented by one normalized unit (1 fF).
CAP_UNIT_FARAD = 1e-15


@dataclass(frozen=True)
class OperatingPoint:
    """Supply voltage and clock frequency of a deployment.

    Attributes:
        vdd: Supply voltage in volts.
        f_clk: Clock frequency in hertz.
    """

    vdd: float = 2.5  # a late-90s process, matching the paper's era
    f_clk: float = 50e6

    def __post_init__(self):
        if self.vdd <= 0:
            raise ValueError("vdd must be positive")
        if self.f_clk <= 0:
            raise ValueError("f_clk must be positive")

    def cycle_charge(self, switched_cap: np.ndarray | float) -> np.ndarray | float:
        """Charge per cycle in coulombs."""
        return np.asarray(switched_cap) * CAP_UNIT_FARAD * self.vdd

    def cycle_energy(self, switched_cap: np.ndarray | float) -> np.ndarray | float:
        """Energy per cycle in joules (``C V^2``; full-swing switching)."""
        return np.asarray(switched_cap) * CAP_UNIT_FARAD * self.vdd**2

    def average_power(self, average_switched_cap: float) -> float:
        """Average power in watts for a mean per-cycle switched capacitance."""
        return float(self.cycle_energy(average_switched_cap)) * self.f_clk

    def scaled(self, vdd: float | None = None,
               f_clk: float | None = None) -> "OperatingPoint":
        """A copy with some parameters replaced (voltage/frequency scaling)."""
        return OperatingPoint(
            vdd=self.vdd if vdd is None else vdd,
            f_clk=self.f_clk if f_clk is None else f_clk,
        )
