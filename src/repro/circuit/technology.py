"""Gate library and technology parameters for the gate-level power substrate.

The paper characterized modules with PowerMill on a transistor-level netlist.
Offline we replace that with a normalized CMOS gate library: every gate type
has a logic function, a per-input pin capacitance and an output self
capacitance.  Charge per output toggle of a net is the total capacitance
hanging on that net (driver self cap + fanout pin caps + per-fanout wire cap),
so per-cycle charge is classic switched-capacitance power up to a constant
factor.  The paper itself treats power and charge as synonymous up to a
constant, so normalized units are sufficient: only *relative* errors are ever
compared.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

import numpy as np

# Wire capacitance added to a net per fanout pin (routing estimate).
WIRE_CAP_PER_FANOUT = 0.15
# Capacitance charged on a primary-input net per pin it drives is counted the
# same way as internal nets; the external driver is modeled as ideal.


def _inv(a):
    return ~a


def _buf(a):
    return a.copy() if isinstance(a, np.ndarray) else a


def _and2(a, b):
    return a & b


def _or2(a, b):
    return a | b


def _nand2(a, b):
    return ~(a & b)


def _nor2(a, b):
    return ~(a | b)


def _xor2(a, b):
    return a ^ b


def _xnor2(a, b):
    return ~(a ^ b)


def _and3(a, b, c):
    return a & b & c


def _or3(a, b, c):
    return a | b | c


def _nand3(a, b, c):
    return ~(a & b & c)


def _nor3(a, b, c):
    return ~(a | b | c)


def _xor3(a, b, c):
    return a ^ b ^ c


def _maj3(a, b, c):
    return (a & b) | (a & c) | (b & c)


def _mux2(sel, a, b):
    """Output ``a`` when ``sel`` is 0, ``b`` when ``sel`` is 1."""
    return (a & ~sel) | (b & sel)


def _aoi21(a, b, c):
    """NOT((a AND b) OR c)."""
    return ~((a & b) | c)


def _oai21(a, b, c):
    """NOT((a OR b) AND c)."""
    return ~((a | b) & c)


@dataclass(frozen=True)
class GateType:
    """Static description of one gate type in the technology library.

    Attributes:
        name: Library cell name (e.g. ``"NAND2"``).
        n_inputs: Number of input pins.
        func: Vectorized boolean function (numpy arrays in, array out).
        input_cap: Capacitance presented by each input pin, in normalized
            femto-farad-like units.
        output_cap: Self capacitance of the output node.
    """

    name: str
    n_inputs: int
    func: Callable[..., np.ndarray]
    input_cap: float
    output_cap: float


# The capacitance figures are loosely modeled after a generic standard-cell
# library: XOR-class cells are heavier than NAND-class cells, multi-input
# cells are heavier than two-input cells.  Absolute values are arbitrary.
_LIBRARY: Tuple[GateType, ...] = (
    GateType("INV", 1, _inv, input_cap=1.0, output_cap=0.5),
    GateType("BUF", 1, _buf, input_cap=1.0, output_cap=0.7),
    GateType("AND2", 2, _and2, input_cap=1.0, output_cap=0.8),
    GateType("OR2", 2, _or2, input_cap=1.0, output_cap=0.8),
    GateType("NAND2", 2, _nand2, input_cap=1.0, output_cap=0.6),
    GateType("NOR2", 2, _nor2, input_cap=1.0, output_cap=0.6),
    GateType("XOR2", 2, _xor2, input_cap=1.6, output_cap=1.1),
    GateType("XNOR2", 2, _xnor2, input_cap=1.6, output_cap=1.1),
    GateType("AND3", 3, _and3, input_cap=1.1, output_cap=0.9),
    GateType("OR3", 3, _or3, input_cap=1.1, output_cap=0.9),
    GateType("NAND3", 3, _nand3, input_cap=1.1, output_cap=0.7),
    GateType("NOR3", 3, _nor3, input_cap=1.1, output_cap=0.7),
    GateType("XOR3", 3, _xor3, input_cap=1.8, output_cap=1.4),
    GateType("MAJ3", 3, _maj3, input_cap=1.4, output_cap=1.0),
    GateType("MUX2", 3, _mux2, input_cap=1.3, output_cap=1.0),
    GateType("AOI21", 3, _aoi21, input_cap=1.1, output_cap=0.7),
    GateType("OAI21", 3, _oai21, input_cap=1.1, output_cap=0.7),
)

GATE_TYPES: Dict[str, GateType] = {g.name: g for g in _LIBRARY}

#: Stable integer id per gate type, used by the compiled simulator.
GATE_TYPE_IDS: Dict[str, int] = {g.name: i for i, g in enumerate(_LIBRARY)}
GATE_TYPE_LIST: Tuple[GateType, ...] = _LIBRARY


def gate_type(name: str) -> GateType:
    """Look up a :class:`GateType` by name.

    Raises:
        KeyError: If ``name`` is not a known library cell.
    """
    try:
        return GATE_TYPES[name]
    except KeyError:
        raise KeyError(
            f"unknown gate type {name!r}; known: {sorted(GATE_TYPES)}"
        ) from None
