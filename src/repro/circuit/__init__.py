"""Gate-level circuit substrate: netlists, simulation and power accounting.

This subpackage is the offline stand-in for the transistor-level power
simulator (PowerMill) and the structural views of the Synopsys DesignWare
modules used in the paper.  See DESIGN.md section 2 for the substitution
rationale.
"""

from .builder import NetlistBuilder
from .compiled import CompiledNetlist
from .hotspots import NetHotspot, net_power_breakdown, render_hotspots
from .netlist import CONST0, CONST1, Gate, Netlist, NetlistError
from .power import PowerSimulator, PowerTrace
from .simulate import (
    evaluate_outputs,
    functional_values,
    unit_delay_transition,
    zero_delay_toggles,
)
from .technology import GATE_TYPES, GateType, gate_type
from .units import CAP_UNIT_FARAD, OperatingPoint

__all__ = [
    "CAP_UNIT_FARAD",
    "CONST0",
    "CONST1",
    "CompiledNetlist",
    "Gate",
    "GateType",
    "GATE_TYPES",
    "NetHotspot",
    "Netlist",
    "NetlistBuilder",
    "NetlistError",
    "OperatingPoint",
    "PowerSimulator",
    "PowerTrace",
    "evaluate_outputs",
    "functional_values",
    "gate_type",
    "net_power_breakdown",
    "render_hotspots",
    "unit_delay_transition",
    "zero_delay_toggles",
]
