"""Gate-level circuit substrate: netlists, simulation and power accounting.

This subpackage is the offline stand-in for the transistor-level power
simulator (PowerMill) and the structural views of the Synopsys DesignWare
modules used in the paper.  See DESIGN.md section 2 for the substitution
rationale.
"""

from .builder import NetlistBuilder
from .compiled import CompiledNetlist
from .hotspots import NetHotspot, net_power_breakdown, render_hotspots
from .netlist import CONST0, CONST1, Gate, Netlist, NetlistError
from .packed import (
    PACKED_AVAILABLE,
    ToggleAccumulator,
    pack_lanes,
    packed_functional_values,
    packed_unit_delay_transition,
    popcount,
    unpack_lanes,
)
from .native import native_status
from .power import ENGINES, PowerSimulator, PowerTrace, SimulationStats
from .program import BitwiseProgram, compile_program
from .simulate import (
    evaluate_outputs,
    functional_values,
    unit_delay_transition,
    zero_delay_toggles,
)
from .technology import GATE_TYPES, GateType, gate_type
from .units import CAP_UNIT_FARAD

__all__ = [
    "BitwiseProgram",
    "CAP_UNIT_FARAD",
    "CONST0",
    "CONST1",
    "CompiledNetlist",
    "ENGINES",
    "Gate",
    "GateType",
    "GATE_TYPES",
    "NetHotspot",
    "Netlist",
    "NetlistBuilder",
    "NetlistError",
    "OperatingPoint",
    "PACKED_AVAILABLE",
    "PowerSimulator",
    "PowerTrace",
    "SimulationStats",
    "ToggleAccumulator",
    "compile_program",
    "evaluate_outputs",
    "functional_values",
    "gate_type",
    "native_status",
    "net_power_breakdown",
    "pack_lanes",
    "packed_functional_values",
    "packed_unit_delay_transition",
    "popcount",
    "render_hotspots",
    "unpack_lanes",
    "zero_delay_toggles",
]


def __getattr__(name):
    # ``OperatingPoint`` moved to the technology calibration layer
    # (``repro.tech``), which generalizes it across process nodes.  The
    # old ``repro.circuit`` spelling keeps working — same class, bit
    # -identical numerics — behind a one-shot deprecation.
    if name == "OperatingPoint":
        from .._compat import warn_once
        from .units import OperatingPoint

        warn_once(
            "circuit:OperatingPoint",
            "importing OperatingPoint from repro.circuit is deprecated; "
            "use repro.tech (OperatingPoint, or the node-aware "
            "Calibration)",
        )
        return OperatingPoint
    raise AttributeError(
        f"module 'repro.circuit' has no attribute {name!r}"
    )
