"""Compilation of a netlist into numpy-friendly index arrays.

Simulation of thousands of gates over thousands of patterns is only feasible
in pure Python if gates are evaluated in *groups*: all gates of one type (and,
for levelized evaluation, one level) are evaluated with a single vectorized
numpy expression using fancy indexing into a ``[n_nets, n_patterns]`` value
matrix.  :class:`CompiledNetlist` precomputes those index arrays once per
module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from .netlist import CONST0, CONST1, Netlist
from .technology import GATE_TYPES, WIRE_CAP_PER_FANOUT, GateType


@dataclass(frozen=True)
class GateGroup:
    """All gates of one type (optionally restricted to one level).

    Attributes:
        gate_type: The shared library cell.
        inputs: Tuple of ``n_inputs`` index arrays, one per pin position;
            ``inputs[k][j]`` is the net feeding pin ``k`` of gate ``j``.
        outputs: Index array of driven nets.
    """

    gate_type: GateType
    inputs: Tuple[np.ndarray, ...]
    outputs: np.ndarray

    def evaluate(self, values: np.ndarray) -> np.ndarray:
        """Evaluate the whole group against a ``[n_nets, ...]`` value matrix."""
        pin_values = [values[idx] for idx in self.inputs]
        return self.gate_type.func(*pin_values)


class CompiledNetlist:
    """A netlist lowered to grouped index arrays plus capacitance vector.

    Attributes:
        netlist: The source netlist.
        n_nets: Net count.
        depth: Longest path in gate levels (bounds unit-delay settling).
        levels: Per-net topological level (intp, length ``n_nets``).
        level_groups: Gate groups ordered by (level, type) for single-pass
            zero-delay evaluation.
        type_groups: Gate groups keyed by type only, for synchronous
            unit-delay iteration.
        type_group_positions: Per type group, the positions of its outputs
            within ``gate_output_nets`` (compact staging indices).
        net_caps: Per-net switched capacitance (float64, length ``n_nets``).
    """

    def __init__(self, netlist: Netlist):
        self.netlist = netlist
        self.n_nets = netlist.n_nets
        # levelize() memoizes on the netlist, so a validated netlist is
        # not re-levelized here (it used to be computed twice per build).
        levels = netlist.levelize()
        self.levels = np.asarray(levels, dtype=np.intp)
        self.depth = max(levels) if levels else 0

        # --- level-ordered groups (zero-delay single pass) ---
        by_level_type: Dict[Tuple[int, str], List] = {}
        for gate in netlist.gates:
            key = (levels[gate.output], gate.type_name)
            by_level_type.setdefault(key, []).append(gate)
        self.level_groups: List[GateGroup] = []
        for (_, type_name), gates in sorted(
            by_level_type.items(), key=lambda kv: kv[0]
        ):
            self.level_groups.append(_make_group(type_name, gates))

        # --- type-only groups (unit-delay synchronous iteration) ---
        by_type: Dict[str, List] = {}
        for gate in netlist.gates:
            by_type.setdefault(gate.type_name, []).append(gate)
        self.type_groups: List[GateGroup] = [
            _make_group(type_name, gates)
            for type_name, gates in sorted(by_type.items())
        ]

        # --- capacitance: self cap of driver + pin caps + wire per fanout ---
        caps = np.zeros(netlist.n_nets, dtype=np.float64)
        for gate in netlist.gates:
            gtype = GATE_TYPES[gate.type_name]
            caps[gate.output] += gtype.output_cap
            for net in gate.inputs:
                caps[net] += gtype.input_cap + WIRE_CAP_PER_FANOUT
        # Constants never switch; zero them so they can't contribute charge.
        caps[CONST0] = caps[CONST1] = 0.0
        self.net_caps = caps

        # Output index of gate-driven nets (used to apply synchronous updates)
        self.gate_output_nets = np.array(
            sorted(g.output for g in netlist.gates), dtype=np.intp
        )
        # Position of each type group's outputs within gate_output_nets,
        # so the unit-delay engines can stage writes into a compact
        # [n_gates, ...] buffer instead of copying the full value matrix.
        self.type_group_positions: List[np.ndarray] = [
            np.searchsorted(self.gate_output_nets, group.outputs)
            for group in self.type_groups
        ]

    @property
    def input_nets(self) -> np.ndarray:
        return np.asarray(self.netlist.inputs, dtype=np.intp)

    @property
    def output_nets(self) -> np.ndarray:
        return np.asarray(self.netlist.outputs, dtype=np.intp)

    def initial_values(self, n_patterns: int) -> np.ndarray:
        """Fresh value matrix with constants preset."""
        values = np.zeros((self.n_nets, n_patterns), dtype=bool)
        values[CONST1] = True
        return values


def _make_group(type_name: str, gates: Sequence) -> GateGroup:
    gtype = GATE_TYPES[type_name]
    inputs = tuple(
        np.array([g.inputs[k] for g in gates], dtype=np.intp)
        for k in range(gtype.n_inputs)
    )
    outputs = np.array([g.output for g in gates], dtype=np.intp)
    return GateGroup(gtype, inputs, outputs)
