"""Logic simulation engines.

Two engines share the :class:`~repro.circuit.compiled.CompiledNetlist`
representation:

* :func:`functional_values` — zero-delay levelized evaluation.  One pass over
  the level groups settles the whole circuit; used for golden functional
  checks and as the starting state of every power transition.
* :func:`unit_delay_transition` — synchronous unit-delay relaxation.  Starting
  from the settled state under vector ``u``, the inputs switch to ``v`` and
  every gate output at step ``t+1`` is recomputed from net values at step
  ``t`` until a fixpoint.  Every net value change along the way is a counted
  toggle, which makes glitches in arithmetic arrays visible — the key
  behaviour a transistor-level tool like PowerMill would expose and a
  zero-delay toggle count would hide.

Both engines are vectorized across patterns/transitions: values live in a
``[n_nets, n_patterns]`` boolean matrix and each gate group is one numpy
expression.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .compiled import CompiledNetlist


def functional_values(
    compiled: CompiledNetlist, input_bits: np.ndarray
) -> np.ndarray:
    """Settle the circuit under each input vector (zero delay).

    Args:
        compiled: Compiled netlist.
        input_bits: ``[n_patterns, n_inputs]`` boolean matrix; column order
            matches ``netlist.inputs``.

    Returns:
        ``[n_nets, n_patterns]`` settled value matrix.
    """
    input_bits = np.asarray(input_bits, dtype=bool)
    if input_bits.ndim != 2 or input_bits.shape[1] != len(compiled.netlist.inputs):
        raise ValueError(
            f"input_bits must be [n_patterns, {len(compiled.netlist.inputs)}], "
            f"got {input_bits.shape}"
        )
    values = compiled.initial_values(input_bits.shape[0])
    values[compiled.input_nets] = input_bits.T
    for group in compiled.level_groups:
        values[group.outputs] = group.evaluate(values)
    return values


def evaluate_outputs(
    compiled: CompiledNetlist, input_bits: np.ndarray
) -> np.ndarray:
    """Return ``[n_patterns, n_outputs]`` output bits for the given inputs."""
    values = functional_values(compiled, input_bits)
    return values[compiled.output_nets].T


def unit_delay_transition(
    compiled: CompiledNetlist,
    settled: np.ndarray,
    new_inputs: np.ndarray,
    max_steps: Optional[int] = None,
    count_inputs: bool = True,
) -> Tuple[np.ndarray, np.ndarray]:
    """Relax the circuit after an input transition, counting toggles.

    Args:
        compiled: Compiled netlist.
        settled: ``[n_nets, n_transitions]`` settled values under the old
            input vectors (will not be mutated).
        new_inputs: ``[n_transitions, n_inputs]`` new input vectors.
        max_steps: Safety bound on relaxation steps; defaults to
            ``4 * depth + 8`` (a synchronous acyclic network settles within
            ``depth`` steps, the slack is pure paranoia).
        count_inputs: Whether input-net transitions count as toggles (they
            charge the module's input pin capacitance, so the default is
            True, matching what a transistor-level tool measures at the
            module boundary).

    Returns:
        ``(final_values, toggle_counts)`` where ``toggle_counts`` is a
        ``[n_nets, n_transitions]`` uint32 matrix of per-net toggle counts
        for this transition (including the input application itself when
        ``count_inputs``).
    """
    if max_steps is None:
        max_steps = 4 * compiled.depth + 8
    new_inputs = np.asarray(new_inputs, dtype=bool)
    n_transitions = new_inputs.shape[0]
    if settled.shape != (compiled.n_nets, n_transitions):
        raise ValueError(
            f"settled must be [{compiled.n_nets}, {n_transitions}], "
            f"got {settled.shape}"
        )

    values = settled.copy()
    toggles = np.zeros((compiled.n_nets, n_transitions), dtype=np.uint32)

    input_nets = compiled.input_nets
    input_changed = values[input_nets] != new_inputs.T
    if count_inputs:
        toggles[input_nets] += input_changed.astype(np.uint32)
    values[input_nets] = new_inputs.T

    # Only gate-output rows can change after the input application, so the
    # relaxation stages, compares and accumulates over a compact
    # [n_gates, n_transitions] buffer instead of copying the full
    # [n_nets, n_transitions] matrix every step (inputs and constants are
    # dead weight in that copy).
    gate_rows = compiled.gate_output_nets
    staged = np.empty((len(gate_rows), n_transitions), dtype=bool)
    for _ in range(max_steps):
        # Synchronous step: every gate reads the current snapshot, then all
        # outputs update at once (stage all reads before any write).
        for group, positions in zip(
            compiled.type_groups, compiled.type_group_positions
        ):
            staged[positions] = group.evaluate(values)
        changed = staged != values[gate_rows]
        if not changed.any():
            break
        toggles[gate_rows] += changed.astype(np.uint32)
        values[gate_rows] = staged
    else:
        raise RuntimeError(
            f"unit-delay simulation of {compiled.netlist.name} did not settle "
            f"within {max_steps} steps"
        )
    return values, toggles


def zero_delay_toggles(
    compiled: CompiledNetlist,
    settled_old: np.ndarray,
    settled_new: np.ndarray,
) -> np.ndarray:
    """Toggle counts ignoring glitches (ablation reference).

    Each net toggles at most once: iff its settled value differs between the
    two input vectors.
    """
    return (settled_old != settled_new).astype(np.uint32)
