"""Pipelined (registered) datapath simulation.

The unit-delay engine shows that glitches dominate arithmetic-array power;
the classic architectural countermeasure is **pipelining**: register
boundaries stop glitch propagation between stages, trading latency for a
large cut in spurious switching.  :class:`PipelinedCircuit` chains
combinational stages through ideal register ranks and accounts charge per
stage, so that trade-off is measurable with the same machinery the rest of
the library uses.

Registers are modeled as ideal sampling elements whose own dynamic cost is
one input-capacitance charge per toggling bit (the register-bank model);
clock-tree power is out of scope, as it is in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .compiled import CompiledNetlist
from .netlist import Netlist
from .power import PowerSimulator, PowerTrace
from .technology import GATE_TYPES

#: Capacitance charged per register input bit toggle (a DFF D-pin).
REGISTER_PIN_CAP = GATE_TYPES["BUF"].input_cap


@dataclass(frozen=True)
class PipelineTrace:
    """Per-stage and total charge of a pipelined run.

    Attributes:
        stage_charge: ``stage_charge[k]`` is the per-cycle charge array of
            combinational stage ``k`` (aligned to the input stream; early
            cycles before the pipeline fills are included).
        register_charge: Charge of each register rank per cycle.
    """

    stage_charge: Tuple[np.ndarray, ...]
    register_charge: Tuple[np.ndarray, ...]

    @property
    def total_average(self) -> float:
        total = sum(float(c.mean()) for c in self.stage_charge)
        total += sum(float(c.mean()) for c in self.register_charge)
        return total

    @property
    def combinational_average(self) -> float:
        return sum(float(c.mean()) for c in self.stage_charge)


class PipelinedCircuit:
    """A chain of combinational stages separated by register ranks.

    Stage ``k``'s outputs are registered and feed stage ``k+1``'s inputs;
    widths must match (``stage[k].outputs == stage[k+1].inputs``).

    Args:
        stages: Combinational netlists in pipeline order.
        glitch_aware: Reference engine selection for the stages.
    """

    def __init__(
        self,
        stages: Sequence[Netlist],
        glitch_aware: bool = True,
    ):
        if not stages:
            raise ValueError("need at least one stage")
        self.stages = [CompiledNetlist(s) for s in stages]
        for k in range(len(stages) - 1):
            produced = len(stages[k].outputs)
            consumed = len(stages[k + 1].inputs)
            if produced != consumed:
                raise ValueError(
                    f"stage {k} produces {produced} bits but stage "
                    f"{k + 1} consumes {consumed}"
                )
        self.glitch_aware = glitch_aware
        self._simulators = [
            PowerSimulator(c, glitch_aware=glitch_aware) for c in self.stages
        ]

    @property
    def n_stages(self) -> int:
        return len(self.stages)

    @property
    def n_inputs(self) -> int:
        return len(self.stages[0].netlist.inputs)

    # ------------------------------------------------------------------
    def stage_input_streams(self, input_bits: np.ndarray) -> List[np.ndarray]:
        """Input stream seen by each stage (after register retiming).

        Because registers are ideal, stage ``k`` simply sees the settled
        outputs of stage ``k-1``, delayed by one cycle; the delay does not
        change the *set* of consecutive pairs, so for power purposes each
        stage can be simulated on the undelayed stream of its
        predecessor's outputs.
        """
        from .simulate import evaluate_outputs

        streams = [np.asarray(input_bits, dtype=bool)]
        for compiled in self.stages[:-1]:
            outputs = evaluate_outputs(compiled, streams[-1])
            streams.append(outputs)
        return streams

    def simulate(self, input_bits: np.ndarray) -> PipelineTrace:
        """Per-stage power of the pipeline under an input stream."""
        streams = self.stage_input_streams(input_bits)
        stage_charge: List[np.ndarray] = []
        register_charge: List[np.ndarray] = []
        for simulator, stream in zip(self._simulators, streams):
            stage_charge.append(simulator.simulate(stream).charge)
        # Register ranks sit between stages: rank k samples stage k's
        # outputs (streams[k+1] are exactly those settled outputs).
        for stream in streams[1:]:
            toggles = (stream[1:] != stream[:-1]).sum(axis=1)
            register_charge.append(toggles * REGISTER_PIN_CAP)
        return PipelineTrace(
            stage_charge=tuple(stage_charge),
            register_charge=tuple(register_charge),
        )


def split_multiplier_pipeline(width: int) -> Tuple[Netlist, Netlist]:
    """A two-stage pipelined csa multiplier: array stage + merge stage.

    Stage 1 computes the Baugh-Wooley carry-save array and exposes the
    (sum, carry) vectors; stage 2 is the vector-merge ripple adder.  The
    register boundary between them stops array glitches from rippling
    through the merge adder — the pipelining experiment's subject.
    """
    from ..circuit.builder import NetlistBuilder
    from ..circuit.netlist import CONST0
    from ..modules.multipliers import _baugh_wooley_rows

    if width < 2:
        raise ValueError("width must be >= 2")
    product_width = 2 * width

    # --- stage 1: array, outputs sum/carry vectors ---
    b1 = NetlistBuilder(f"csa_array_stage_{width}")
    a_bits = b1.add_inputs(width, "a")
    b_bits = b1.add_inputs(width, "b")
    rows = _baugh_wooley_rows(b1, a_bits, b_bits)
    sum_vec: List[int] = [CONST0] * product_width
    carry_vec: List[int] = [CONST0] * product_width
    for row in rows:
        passes: List[dict] = []
        for col, bits in row.items():
            for depth, bit in enumerate(bits):
                while len(passes) <= depth:
                    passes.append({})
                passes[depth][col] = bit
        for row_pass in passes:
            new_sum = list(sum_vec)
            new_carry: List[int] = [CONST0] * product_width
            for col in range(product_width):
                bit = row_pass.get(col, CONST0)
                s, cout = b1.full_adder(sum_vec[col], carry_vec[col], bit)
                new_sum[col] = s
                if col + 1 < product_width:
                    new_carry[col + 1] = cout
            sum_vec, carry_vec = new_sum, new_carry
    stage1 = b1.build(outputs=sum_vec + carry_vec)

    # --- stage 2: vector-merge adder ---
    b2 = NetlistBuilder(f"csa_merge_stage_{width}")
    s_in = b2.add_inputs(product_width, "s")
    c_in = b2.add_inputs(product_width, "c")
    outputs: List[int] = []
    carry = CONST0
    for col in range(product_width):
        s, carry = b2.full_adder(s_in[col], c_in[col], carry)
        outputs.append(s)
    stage2 = b2.build(outputs=outputs)
    return stage1, stage2
