"""Optional native (C) backend for the compiled engine's relaxation loop.

The windowed relaxation of :class:`~repro.circuit.program.BitwiseProgram`
is pure integer/bitwise arithmetic, but the numpy implementation still
pays one Python/numpy dispatch per (step, class-group) — several hundred
small vector calls per chunk, which caps the compiled engine's speedup.
This module lowers exactly that loop into a single C function: a generic
interpreter over the program's relax tables (class codes, pin-row
triples, per-gate inversion flags, per-step window starts), so one
netlist-independent shared object serves every module.

Design constraints:

* **Bit-identical by construction.**  The kernel performs the same
  staged evaluation, XOR diff, and ripple-carry plane fold as the numpy
  path, in the same order, entirely in ``uint64`` integer arithmetic —
  there is no floating point and therefore no rounding freedom.  The
  parity tests compare both paths directly.
* **Optional, never required.**  The C source is embedded here,
  compiled on first use with the system compiler (``$CC``, ``cc``,
  ``gcc`` or ``clang``) into a user-cache shared object keyed by a
  source hash, and loaded with :mod:`ctypes` — no build-time step, no
  new dependencies.  Any failure (no compiler, sandboxed filesystem,
  odd libc) degrades silently to the numpy path, as does setting
  ``REPRO_NATIVE=0``.  ``native_status()`` reports which path is live.
* **Small surface.**  Only the relaxation inner loop is native; settle,
  decode and the shared charge accounting stay in numpy where the
  engine-parity contract is enforced.

The instruction tape was designed as the seam for alternative backends;
this is the first one.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path
from typing import Optional

import numpy as np
import numpy.ctypeslib as npct

__all__ = [
    "CLASS_CODES",
    "NativeTables",
    "decode_native",
    "native_decode",
    "native_kernel",
    "native_status",
    "relax_native",
    "set_native_enabled",
]

#: Canonical class name -> kernel switch code (must match the C source).
CLASS_CODES = {"AND": 0, "XOR": 1, "MAJ": 2, "MUX": 3, "AOI": 4}

_SOURCE = r"""
#include <stdint.h>

/* Windowed-synchronous unit-delay relaxation over packed uint64 lanes.
 *
 * Mirrors BitwiseProgram.relax() exactly: at step t every class group
 * evaluates its level >= t suffix against the step t-1 snapshot (reads
 * from `values`, writes staged results to `scratch`), then all diffs
 * are folded into the bit-sliced toggle planes and written back.  The
 * fold per (row, word) ripples through at most bit_length(t) planes --
 * a row's count after step t is at most t, so deeper carries are
 * provably zero.  Returns the last step with a change.
 */
int32_t repro_relax(
    uint64_t *values,           /* [R, W], updated in place          */
    uint64_t *scratch,          /* [R, W] staging buffer             */
    uint64_t *planes,           /* [MAXP, R, W], zero-initialized    */
    int32_t *n_planes_io,       /* in/out: planes in use             */
    const int32_t *in_rows,     /* pin-major [3, size] per group     */
    const uint8_t *flags,       /* per gate: bits 0-2 pin inversion,
                                   bit 3 output inversion            */
    const int32_t *group_class, /* [n_groups] CLASS_CODES            */
    const int32_t *group_base,  /* [n_groups] first block row        */
    const int32_t *group_size,  /* [n_groups] gates in block         */
    const int32_t *group_off,   /* [n_groups] gate offset into
                                   flags / in_rows                   */
    const int32_t *level_first, /* [n_groups, depth + 2] window
                                   starts                            */
    int32_t n_groups,
    int32_t depth,
    int64_t n_rows,
    int64_t n_words,
    int64_t *evals_out)
{
    int32_t n_planes = *n_planes_io;
    int64_t evals = 0;
    int32_t steps = 0;
    for (int32_t t = 1; t <= depth; t++) {
        int changed = 0;
        /* Stage phase: evaluate every active suffix against the step
         * t-1 snapshot.  Nothing in `values` is written here, so the
         * snapshot semantics match the numpy path exactly. */
        for (int32_t g = 0; g < n_groups; g++) {
            int32_t size = group_size[g];
            int32_t k = level_first[(int64_t)g * (depth + 2) + t];
            if (k >= size)
                continue;
            evals++;
            int32_t base = group_base[g];
            int32_t off = group_off[g];
            int32_t cls = group_class[g];
            const int32_t *pa = in_rows + (int64_t)3 * off;
            const int32_t *pb = pa + size;
            const int32_t *pc = pb + size;
            for (int32_t i = k; i < size; i++) {
                const uint64_t *xa = values + (int64_t)pa[i] * n_words;
                const uint64_t *xb = values + (int64_t)pb[i] * n_words;
                const uint64_t *xc = values + (int64_t)pc[i] * n_words;
                uint64_t *out = scratch + (int64_t)(base + i) * n_words;
                uint8_t f = flags[off + i];
                uint64_t ia = (f & 1) ? ~(uint64_t)0 : 0;
                uint64_t ib = (f & 2) ? ~(uint64_t)0 : 0;
                uint64_t ic = (f & 4) ? ~(uint64_t)0 : 0;
                uint64_t io = (f & 8) ? ~(uint64_t)0 : 0;
                switch (cls) {
                case 0: /* AND */
                    for (int64_t w = 0; w < n_words; w++)
                        out[w] = (((xa[w] ^ ia) & (xb[w] ^ ib))
                                  & (xc[w] ^ ic)) ^ io;
                    break;
                case 1: /* XOR: input inversions fold into io */
                    for (int64_t w = 0; w < n_words; w++)
                        out[w] = (xa[w] ^ xb[w] ^ xc[w]) ^ io;
                    break;
                case 2: /* MAJ */
                    for (int64_t w = 0; w < n_words; w++) {
                        uint64_t a = xa[w], b = xb[w], c = xc[w];
                        out[w] = ((a & (b | c)) | (b & c)) ^ io;
                    }
                    break;
                case 3: /* MUX, pins (sel, a, b) */
                    for (int64_t w = 0; w < n_words; w++) {
                        uint64_t s = xa[w], a = xb[w], b = xc[w];
                        out[w] = (a ^ ((a ^ b) & s)) ^ io;
                    }
                    break;
                case 4: /* AOI */
                    for (int64_t w = 0; w < n_words; w++)
                        out[w] = (((xa[w] ^ ia) & (xb[w] ^ ib))
                                  | (xc[w] ^ ic)) ^ io;
                    break;
                }
            }
        }
        /* Write phase: diff, fold toggles, commit. */
        int32_t bound = 0;
        for (int32_t x = t; x; x >>= 1)
            bound++;
        for (int32_t g = 0; g < n_groups; g++) {
            int32_t size = group_size[g];
            int32_t k = level_first[(int64_t)g * (depth + 2) + t];
            if (k >= size)
                continue;
            int32_t base = group_base[g];
            for (int32_t i = k; i < size; i++) {
                int64_t row = base + i;
                uint64_t *v = values + row * n_words;
                const uint64_t *nv = scratch + row * n_words;
                for (int64_t w = 0; w < n_words; w++) {
                    uint64_t d = v[w] ^ nv[w];
                    if (!d)
                        continue;
                    changed = 1;
                    v[w] = nv[w];
                    uint64_t carry = d;
                    for (int32_t p = 0; p < bound && carry; p++) {
                        uint64_t *pp = planes
                            + ((int64_t)p * n_rows + row) * n_words + w;
                        uint64_t nc = *pp & carry;
                        *pp ^= carry;
                        carry = nc;
                        if (p + 1 > n_planes)
                            n_planes = p + 1;
                    }
                }
            }
        }
        if (!changed)
            break;
        steps = t;
    }
    *n_planes_io = n_planes;
    *evals_out = evals;
    return steps;
}

/* Fused toggle-plane decode: bit-sliced planes (program-row order) to a
 * dense float64 count matrix in *net* order, plus per-lane uint32
 * totals, in one pass.  Counts are small integers (< 2^n_planes <= 256)
 * so the float64 stores are exact -- the matrix holds bit-for-bit the
 * same values as toggles.astype(float64) on the numpy path, and the
 * BLAS charge accounting downstream stays verbatim-identical.  Eight
 * lanes decode per LUT step (one byte of the packed word spreads to
 * eight count bytes; with n_planes <= 8 the per-byte accumulator cannot
 * carry across lanes). */
void repro_decode(
    const uint64_t *planes,    /* [n_planes, n_rows, n_words]        */
    int32_t n_planes,
    int64_t n_rows,
    int64_t n_words,
    const int64_t *row_of_net, /* [n_nets] net -> program row        */
    int64_t n_nets,
    int64_t n_lanes,
    double *out,               /* [n_nets, n_lanes]                  */
    uint32_t *totals)          /* [n_lanes]                          */
{
    static int lut_built = 0;
    static uint64_t LUT[256];
    if (!lut_built) {
        for (int v = 0; v < 256; v++) {
            uint64_t x = 0;
            for (int b = 0; b < 8; b++)
                if (v & (1 << b))
                    x |= (uint64_t)1 << (8 * b);
            LUT[v] = x;
        }
        lut_built = 1;
    }
    for (int64_t l = 0; l < n_lanes; l++)
        totals[l] = 0;
    int64_t plane_stride = n_rows * n_words;
    for (int64_t net = 0; net < n_nets; net++) {
        int64_t row = row_of_net[net];
        double *dst = out + net * n_lanes;
        const uint64_t *pr = planes + row * n_words;
        for (int64_t w = 0; w < n_words; w++) {
            int64_t lane0 = w * 64;
            int64_t nl = n_lanes - lane0;
            if (nl <= 0)
                break;
            if (nl > 64)
                nl = 64;
            uint64_t pw[8];
            for (int32_t p = 0; p < n_planes; p++)
                pw[p] = pr[(int64_t)p * plane_stride + w];
            for (int64_t b8 = 0; b8 < nl; b8 += 8) {
                uint64_t acc = 0;
                for (int32_t p = 0; p < n_planes; p++)
                    acc += LUT[(pw[p] >> b8) & 0xFF] << p;
                int64_t lim = nl - b8;
                if (lim > 8)
                    lim = 8;
                for (int64_t j = 0; j < lim; j++) {
                    uint32_t c = (uint32_t)((acc >> (8 * j)) & 0xFF);
                    dst[lane0 + b8 + j] = (double)c;
                    totals[lane0 + b8 + j] += c;
                }
            }
        }
    }
}
"""


def _cache_dir() -> Path:
    override = os.environ.get("REPRO_NATIVE_CACHE")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-native"


def _compiler() -> Optional[str]:
    cc = os.environ.get("CC")
    if cc and shutil.which(cc):
        return cc
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def _build_library() -> Optional[Path]:
    """Compile (or reuse) the cached shared object; None on any failure."""
    cc = _compiler()
    if cc is None:
        return None
    digest = hashlib.sha256(_SOURCE.encode()).hexdigest()[:16]
    cache = _cache_dir()
    so_path = cache / f"relax-{digest}.so"
    if so_path.exists():
        return so_path
    try:
        cache.mkdir(parents=True, exist_ok=True)
        src_path = cache / f"relax-{digest}.c"
        src_path.write_text(_SOURCE)
        fd, tmp_name = tempfile.mkstemp(suffix=".so", dir=str(cache))
        os.close(fd)
        subprocess.run(
            [cc, "-O2", "-shared", "-fPIC", "-o", tmp_name, str(src_path)],
            check=True, capture_output=True, timeout=120,
        )
        os.replace(tmp_name, so_path)  # atomic w.r.t. concurrent builders
        return so_path
    except (OSError, subprocess.SubprocessError):
        return None


_I32 = npct.ndpointer(np.int32, flags="C_CONTIGUOUS")
_U8 = npct.ndpointer(np.uint8, flags="C_CONTIGUOUS")
_U32 = npct.ndpointer(np.uint32, flags="C_CONTIGUOUS")
_U64 = npct.ndpointer(np.uint64, flags="C_CONTIGUOUS")
_I64 = npct.ndpointer(np.int64, flags="C_CONTIGUOUS")
_F64 = npct.ndpointer(np.float64, flags="C_CONTIGUOUS")

#: Lazy singletons: False = not resolved yet, None = unavailable.
_KERNEL = False
_DECODE = False
_STATUS = "unresolved"
#: Programmatic gate override: None defers to $REPRO_NATIVE, True/False wins.
_FORCED: Optional[bool] = None


def _gate_disabled() -> bool:
    """Whether the backend is switched off *right now*.

    Evaluated on every :func:`native_kernel` call — the environment is
    re-read each time rather than captured at import, so forked workers
    and tests can flip ``REPRO_NATIVE`` (or call
    :func:`set_native_enabled`) without re-importing the module.  Only
    the expensive resolution (compile + dlopen) is cached.
    """
    if _FORCED is not None:
        return not _FORCED
    return os.environ.get("REPRO_NATIVE", "").lower() in ("0", "false", "off")


def set_native_enabled(enabled: Optional[bool]) -> None:
    """Override the ``REPRO_NATIVE`` gate programmatically.

    ``True`` forces the native path on (if it can be built), ``False``
    forces the numpy fallback, ``None`` restores deference to the
    environment variable.  Takes effect on the next kernel lookup; the
    compiled library, if already loaded, is kept and simply re-exposed
    when re-enabled.
    """
    global _FORCED
    _FORCED = enabled


def native_kernel():
    """The loaded C relax function, or ``None`` when unavailable.

    Resolution (compiler lookup, compile, dlopen) runs once per process
    and is cached; the ``REPRO_NATIVE`` / :func:`set_native_enabled`
    gate is re-evaluated on every call (``0``/``false``/``off``
    disables).
    """
    global _KERNEL, _DECODE, _STATUS
    if _gate_disabled():
        return None
    if _KERNEL is not False:
        return _KERNEL
    so_path = _build_library()
    if so_path is None:
        _KERNEL, _DECODE, _STATUS = None, None, "no compiler or build failed"
        return None
    try:
        lib = ctypes.CDLL(str(so_path))
        fn = lib.repro_relax
        fn.argtypes = [
            _U64, _U64, _U64, _I32,
            _I32, _U8, _I32, _I32, _I32, _I32, _I32,
            ctypes.c_int32, ctypes.c_int32,
            ctypes.c_int64, ctypes.c_int64,
            _I64,
        ]
        fn.restype = ctypes.c_int32
        dec = lib.repro_decode
        dec.argtypes = [
            _U64, ctypes.c_int32,
            ctypes.c_int64, ctypes.c_int64,
            _I64, ctypes.c_int64, ctypes.c_int64,
            _F64, _U32,
        ]
        dec.restype = None
    except (OSError, AttributeError):
        _KERNEL, _DECODE, _STATUS = None, None, f"failed to load {so_path}"
        return None
    _KERNEL, _DECODE, _STATUS = fn, dec, f"native ({so_path})"
    return fn


def native_decode():
    """The loaded C decode function, or ``None`` (same gating as relax)."""
    if native_kernel() is None:
        return None
    return _DECODE


def native_status() -> str:
    """Human-readable state of the native backend (for diagnostics)."""
    if _FORCED is False:
        return "disabled by set_native_enabled(False)"
    if _FORCED is None and _gate_disabled():
        return "disabled by REPRO_NATIVE"
    return _STATUS


class NativeTables:
    """Flattened relax tables of one program, ready for the C kernel."""

    __slots__ = (
        "in_rows", "flags", "group_class", "group_base", "group_size",
        "group_off", "level_first", "n_groups", "depth",
    )

    def __init__(self, program) -> None:
        groups = program.relax_groups
        self.n_groups = len(groups)
        self.depth = int(program.depth)
        self.group_class = np.array(
            [CLASS_CODES[g.name] for g in groups], dtype=np.int32
        )
        self.group_base = np.array([g.base for g in groups], dtype=np.int32)
        self.group_size = np.array([g.size for g in groups], dtype=np.int32)
        offs, total = [], 0
        for g in groups:
            offs.append(total)
            total += g.size
        self.group_off = np.array(offs, dtype=np.int32)
        rows, flag_parts = [], []
        for g in groups:
            rows.append(
                np.ascontiguousarray(g.in_rows, dtype=np.int32).ravel()
            )
            f = np.zeros(g.size, dtype=np.uint8)
            if g.inv is not None:
                for pin, mask in enumerate(g.inv):
                    if mask is not None:
                        f |= (mask[:, 0] != 0).astype(np.uint8) << np.uint8(
                            pin
                        )
            if g.out_mask is not None:
                f |= (g.out_mask[:, 0] != 0).astype(np.uint8) << np.uint8(3)
            flag_parts.append(f)
        self.in_rows = (
            np.concatenate(rows) if rows else np.zeros(0, dtype=np.int32)
        )
        self.flags = (
            np.concatenate(flag_parts) if flag_parts
            else np.zeros(0, dtype=np.uint8)
        )
        self.level_first = np.array(
            [g.level_first for g in groups], dtype=np.int32
        ).reshape(self.n_groups, self.depth + 2)


def native_tables(program) -> Optional[NativeTables]:
    """Tables for ``program``, or ``None`` when the native path can't run.

    ``None`` means: kernel unavailable, or the program contains folded
    LUT groups (the numpy path handles those).  Tables are cached on the
    program instance.
    """
    if native_kernel() is None:
        return None
    if any(g.kind != "op" for g in program.relax_groups):
        return None
    cached = program.__dict__.get("_native_tables_cache")
    if cached is None:
        cached = NativeTables(program)
        program.__dict__["_native_tables_cache"] = cached
    return cached


def relax_native(
    tables: NativeTables,
    values: np.ndarray,
    scratch: np.ndarray,
    planes: np.ndarray,
    n_planes: int,
):
    """Run the C relaxation; returns ``(steps, evals, n_planes_used)``.

    ``values`` is updated in place; ``planes`` is the preallocated
    ``[MAXP, R, W]`` zeroed toggle-plane buffer (slot 0 may already hold
    the input-application fold).
    """
    fn = native_kernel()
    n_rows, n_words = values.shape
    n_planes_io = np.array([n_planes], dtype=np.int32)
    evals_out = np.zeros(1, dtype=np.int64)
    steps = fn(
        values, scratch, planes.reshape(-1), n_planes_io,
        tables.in_rows, tables.flags, tables.group_class,
        tables.group_base, tables.group_size, tables.group_off,
        tables.level_first.reshape(-1),
        np.int32(tables.n_groups), np.int32(tables.depth),
        np.int64(n_rows), np.int64(n_words),
        evals_out,
    )
    return int(steps), int(evals_out[0]), int(n_planes_io[0])


def decode_native(
    planes: np.ndarray,
    row_of_net: np.ndarray,
    n_lanes: int,
    out: np.ndarray,
    totals: np.ndarray,
) -> None:
    """Fused plane decode into preallocated ``float64``/``uint32`` buffers.

    ``planes`` is the contiguous ``[n_planes, R, W]`` in-use slice of the
    relax plane buffer (program-row order); ``out[net, lane]`` receives
    the exact integer toggle count as float64 and ``totals[lane]`` the
    per-lane sum.  Requires ``n_planes <= 8`` (counts < 256) — callers
    fall back to the numpy decode beyond that.
    """
    fn = native_decode()
    n_planes, n_rows, n_words = planes.shape
    fn(
        planes.reshape(-1), np.int32(n_planes),
        np.int64(n_rows), np.int64(n_words),
        row_of_net, np.int64(len(row_of_net)), np.int64(n_lanes),
        out.reshape(-1), totals,
    )
