"""Bit-packed simulation kernels: 64 transitions per ``uint64`` word.

The boolean engine in :mod:`repro.circuit.simulate` stores one net value per
byte in ``[n_nets, n_patterns]`` matrices; every relaxation step copies,
compares and accumulates over that full byte matrix.  This module packs the
*pattern* axis instead — lane ``k`` of word ``w`` is pattern ``64 * w + k`` —
so the same gate groups evaluate 64 patterns per machine word with plain
bitwise numpy ops (every library cell in :mod:`repro.circuit.technology` is
already expressed with ``&``, ``|``, ``^``, ``~``, which operate bit-parallel
on ``uint64`` exactly as they do element-wise on booleans).

Toggle counting is the part that needs care: the unit-delay engine counts
*how many times* each net changed per transition, but a packed change mask
carries only one bit per (net, lane).  :class:`ToggleAccumulator` therefore
keeps the per-lane counters *bit-sliced*: plane ``p`` holds bit ``p`` of
every counter, and folding in a step's change mask is a ripple-carry add of
one bit — a handful of XOR/AND passes instead of a full ``uint32`` matrix
add.  Aggregates over lanes come out via :func:`popcount`
(``np.bitwise_count`` where numpy provides it, an 8-bit LUT otherwise);
dense per-(net, transition) counts, needed for the capacitance-weighted
charge trace, are decoded once per chunk from ``log2(max toggles)`` planes.

Packing relies on little-endian byte order (an 8-byte view of the
``np.packbits(..., bitorder="little")`` stream maps lane ``k`` to bit ``k``
of the word); :data:`PACKED_AVAILABLE` is False on big-endian hosts and the
engine selector falls back to the boolean kernels there.
"""

from __future__ import annotations

import sys
from typing import List, Optional, Tuple

import numpy as np

from .compiled import CompiledNetlist
from .netlist import CONST1

#: Lanes per machine word.
WORD_BITS = 64

_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)

#: Whether the packed engine can run on this host (the uint64 lane layout
#: assumes little-endian byte order; every mainstream CPython platform is).
PACKED_AVAILABLE = sys.byteorder == "little"

# ----------------------------------------------------------------------
# popcount
# ----------------------------------------------------------------------
_BITWISE_COUNT = getattr(np, "bitwise_count", None)

#: Per-byte set-bit counts, the fallback for numpy < 2.0.
_POPCOUNT_LUT = np.array(
    [bin(i).count("1") for i in range(256)], dtype=np.uint8
)


def popcount(words: np.ndarray) -> np.ndarray:
    """Per-word set-bit counts of a ``uint64`` array (any shape).

    Uses ``np.bitwise_count`` when available (numpy >= 2.0), otherwise an
    8-bit lookup table over the byte view.  Returns ``uint64`` so callers
    can sum large arrays without overflow.
    """
    words = np.ascontiguousarray(words, dtype=np.uint64)
    if _BITWISE_COUNT is not None:
        return _BITWISE_COUNT(words).astype(np.uint64)
    per_byte = _POPCOUNT_LUT[words.view(np.uint8)]
    return per_byte.reshape(words.shape + (8,)).sum(
        axis=-1, dtype=np.uint64
    )


# ----------------------------------------------------------------------
# Packing / unpacking
# ----------------------------------------------------------------------
def n_words_for(n_lanes: int) -> int:
    """Words needed to hold ``n_lanes`` lanes."""
    return (n_lanes + WORD_BITS - 1) // WORD_BITS


def pack_lanes(rows: np.ndarray, n_words: Optional[int] = None) -> np.ndarray:
    """Pack a ``[n_rows, n_lanes]`` boolean matrix into ``uint64`` words.

    Lane ``k`` of row ``r`` lands in bit ``k % 64`` of word ``k // 64``.
    Tail lanes beyond ``n_lanes`` are zero-filled, which keeps them inert:
    a zero input vector settles like any other pattern and, with an equal
    zero "new" vector, never toggles.
    """
    rows = np.ascontiguousarray(rows, dtype=bool)
    if rows.ndim != 2:
        raise ValueError(f"expected a 2-d bit matrix, got shape {rows.shape}")
    if n_words is None:
        n_words = n_words_for(rows.shape[1])
    packed8 = np.packbits(rows, axis=1, bitorder="little")
    out8 = np.zeros((rows.shape[0], n_words * 8), dtype=np.uint8)
    out8[:, : packed8.shape[1]] = packed8
    return out8.view(np.uint64)


def unpack_lanes(words: np.ndarray, n_lanes: int) -> np.ndarray:
    """Unpack ``[n_rows, n_words]`` words back to ``[n_rows, n_lanes]``.

    Returns 0/1 ``uint8`` (not bool) because every consumer feeds the
    result straight into integer/float arithmetic.
    """
    words = np.ascontiguousarray(words, dtype=np.uint64)
    bits = np.unpackbits(words.view(np.uint8), axis=1, bitorder="little")
    return bits[:, :n_lanes]


def extract_lane(words: np.ndarray, lane: int) -> np.ndarray:
    """One lane of a ``[n_rows, n_words]`` matrix as a boolean column."""
    word, bit = divmod(lane, WORD_BITS)
    return ((words[:, word] >> np.uint64(bit)) & np.uint64(1)).astype(bool)


def inject_lane(words: np.ndarray, lane: int, column: np.ndarray) -> None:
    """Overwrite one lane of a ``[n_rows, n_words]`` matrix in place."""
    word, bit = divmod(lane, WORD_BITS)
    mask = ~(np.uint64(1) << np.uint64(bit))
    words[:, word] = (words[:, word] & mask) | (
        column.astype(np.uint64) << np.uint64(bit)
    )


# ----------------------------------------------------------------------
# Bit-sliced toggle counters
# ----------------------------------------------------------------------
class ToggleAccumulator:
    """Per-(net, lane) toggle counters stored as bit planes.

    ``planes[p]`` is a ``[n_rows, n_words]`` uint64 matrix holding bit ``p``
    of every counter.  :meth:`add` folds a one-bit change mask in with a
    ripple-carry add; planes grow on demand, so the counter width always
    fits the deepest relaxation actually observed (``ceil(log2(steps + 1))``
    planes — a handful, versus one full ``uint32`` matrix add per step in
    the boolean engine).
    """

    def __init__(self) -> None:
        self.planes: List[np.ndarray] = []

    def add(self, changed: np.ndarray) -> None:
        """Increment every counter whose bit is set in ``changed``."""
        carry = changed
        for index, plane in enumerate(self.planes):
            self.planes[index] = plane ^ carry
            carry = plane & carry
            if not carry.any():
                return
        if carry.any():
            self.planes.append(carry.copy())

    def decode(self, n_lanes: int) -> np.ndarray:
        """Dense ``[n_rows, n_lanes]`` counts (for charge weighting).

        Returns the narrowest sufficient unsigned dtype: ``uint8`` for up
        to 8 planes (counts < 256 by construction), ``uint32`` beyond.
        Staying in ``uint8`` on the common path skips a 4x-wider astype
        per plane, which profiling showed dominated the decode.
        """
        if not self.planes:
            raise ValueError("cannot decode an empty accumulator")
        n_rows = self.planes[0].shape[0]
        dtype = np.uint8 if len(self.planes) <= 8 else np.uint32
        counts = np.zeros((n_rows, n_lanes), dtype=dtype)
        for power, plane in enumerate(self.planes):
            bits = unpack_lanes(plane, n_lanes)
            if dtype is not np.uint8:
                bits = bits.astype(dtype)
            if power:
                np.left_shift(bits, power, out=bits)
            counts += bits
        return counts

    def per_row_totals(self, n_rows: int) -> np.ndarray:
        """Per-net toggle totals over *all* lanes, via :func:`popcount`.

        This is the aggregate the hotspot report needs, and it never
        materializes dense counts: ``sum_p 2^p * popcount(plane_p)``.
        Valid because tail lanes are inert (never toggle) by construction.
        """
        totals = np.zeros(n_rows, dtype=np.uint64)
        for power, plane in enumerate(self.planes):
            totals += popcount(plane).sum(axis=1, dtype=np.uint64) << np.uint64(
                power
            )
        return totals.astype(np.int64)


# ----------------------------------------------------------------------
# Packed engines
# ----------------------------------------------------------------------
def packed_initial_values(
    compiled: CompiledNetlist, n_words: int
) -> np.ndarray:
    """Fresh packed value matrix with constants preset in every lane."""
    values = np.zeros((compiled.n_nets, n_words), dtype=np.uint64)
    values[CONST1] = _ALL_ONES
    return values


def packed_functional_values(
    compiled: CompiledNetlist, packed_inputs: np.ndarray, n_words: int
) -> np.ndarray:
    """Settle the circuit under each lane's input vector (zero delay).

    The packed twin of :func:`repro.circuit.simulate.functional_values`:
    one pass over the level groups, except each numpy expression now
    evaluates 64 patterns per word.
    """
    values = packed_initial_values(compiled, n_words)
    values[compiled.input_nets] = packed_inputs
    for group in compiled.level_groups:
        values[group.outputs] = group.evaluate(values)
    return values


def packed_unit_delay_transition(
    compiled: CompiledNetlist,
    settled: np.ndarray,
    new_inputs: np.ndarray,
    max_steps: Optional[int] = None,
    count_inputs: bool = True,
) -> Tuple[np.ndarray, ToggleAccumulator]:
    """Relax after an input transition, counting toggles per lane.

    The packed twin of
    :func:`repro.circuit.simulate.unit_delay_transition`: identical
    synchronous semantics (stage all reads before any write), but change
    detection is a word-wise XOR/compare and the per-step change masks fold
    into a :class:`ToggleAccumulator` instead of a dense uint32 add.

    Args:
        compiled: Compiled netlist.
        settled: ``[n_nets, n_words]`` packed settled values (not mutated).
        new_inputs: ``[n_inputs, n_words]`` packed new input vectors.
        max_steps: Safety bound; same default as the boolean engine.
        count_inputs: Count the input application itself as toggles.

    Returns:
        ``(final_values, accumulator)``.
    """
    if max_steps is None:
        max_steps = 4 * compiled.depth + 8
    if settled.shape != (compiled.n_nets, new_inputs.shape[1]):
        raise ValueError(
            f"settled must be [{compiled.n_nets}, {new_inputs.shape[1]}], "
            f"got {settled.shape}"
        )

    accumulator = ToggleAccumulator()
    values = settled.copy()
    input_nets = compiled.input_nets

    input_changed = values[input_nets] ^ new_inputs
    if count_inputs and input_changed.any():
        changed_full = np.zeros_like(values)
        changed_full[input_nets] = input_changed
        accumulator.add(changed_full)
    values[input_nets] = new_inputs

    for _ in range(max_steps):
        # Synchronous step, identical to the boolean engine: every gate
        # reads the current snapshot, then all outputs update at once.
        staged = [group.evaluate(values) for group in compiled.type_groups]
        next_values = values.copy()
        for group, result in zip(compiled.type_groups, staged):
            next_values[group.outputs] = result
        changed = next_values ^ values
        if not changed.any():
            break
        accumulator.add(changed)
        values = next_values
    else:
        raise RuntimeError(
            f"unit-delay simulation of {compiled.netlist.name} did not "
            f"settle within {max_steps} steps"
        )
    return values, accumulator
