"""Structural netlist data model.

A :class:`Netlist` is a flat, single-output-per-gate, acyclic network of
library gates over integer-numbered nets.  It is deliberately minimal: module
generators build netlists through :class:`repro.circuit.builder.NetlistBuilder`
and the simulator consumes them through
:class:`repro.circuit.compiled.CompiledNetlist`.

Net numbering convention:
    * net ``0`` is constant 0, net ``1`` is constant 1 (always present);
    * primary inputs come next, in declaration order;
    * internal nets follow in creation order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .technology import GATE_TYPES, GateType, gate_type

CONST0 = 0
CONST1 = 1


@dataclass(frozen=True)
class Gate:
    """One gate instance: a library cell wired to nets.

    Attributes:
        type_name: Name of the library cell (key into the technology library).
        inputs: Net ids feeding the input pins, in pin order.
        output: Net id driven by the gate.
    """

    type_name: str
    inputs: Tuple[int, ...]
    output: int

    @property
    def gate_type(self) -> GateType:
        return GATE_TYPES[self.type_name]


class NetlistError(ValueError):
    """Raised when a netlist is structurally invalid."""


@dataclass
class Netlist:
    """A combinational gate network.

    Attributes:
        name: Human-readable module name.
        n_nets: Total number of nets (constants + inputs + internal).
        inputs: Primary-input net ids, in port order.
        outputs: Primary-output net ids, in port order.
        gates: Gate instances.
        net_names: Optional debug names for nets.
    """

    name: str
    n_nets: int
    inputs: List[int]
    outputs: List[int]
    gates: List[Gate]
    net_names: Dict[int, str] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def n_inputs(self) -> int:
        return len(self.inputs)

    @property
    def n_gates(self) -> int:
        return len(self.gates)

    def cell_counts(self) -> Dict[str, int]:
        """Return a ``{cell name: instance count}`` histogram."""
        counts: Dict[str, int] = {}
        for gate in self.gates:
            counts[gate.type_name] = counts.get(gate.type_name, 0) + 1
        return counts

    def driver_of(self) -> Dict[int, Gate]:
        """Map each gate-driven net to its driving gate."""
        return {g.output: g for g in self.gates}

    def fanout_counts(self) -> List[int]:
        """Number of gate input pins attached to each net."""
        fanout = [0] * self.n_nets
        for gate in self.gates:
            for net in gate.inputs:
                fanout[net] += 1
        return fanout

    # ------------------------------------------------------------------
    # Validation and levelization
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural well-formedness.

        Raises:
            NetlistError: On out-of-range nets, multiple drivers, undriven
                internal nets, unknown cells, wrong pin counts, or
                combinational cycles.
        """
        driven = [False] * self.n_nets
        driven[CONST0] = driven[CONST1] = True
        for net in self.inputs:
            if not 0 <= net < self.n_nets:
                raise NetlistError(f"input net {net} out of range")
            if driven[net]:
                raise NetlistError(f"input net {net} declared twice or constant")
            driven[net] = True
        for gate in self.gates:
            gtype = gate_type(gate.type_name)
            if len(gate.inputs) != gtype.n_inputs:
                raise NetlistError(
                    f"{gate.type_name} expects {gtype.n_inputs} inputs, "
                    f"got {len(gate.inputs)}"
                )
            for net in gate.inputs:
                if not 0 <= net < self.n_nets:
                    raise NetlistError(f"gate input net {net} out of range")
            if not 0 <= gate.output < self.n_nets:
                raise NetlistError(f"gate output net {gate.output} out of range")
            if driven[gate.output]:
                raise NetlistError(f"net {gate.output} has multiple drivers")
            driven[gate.output] = True
        for net in self.outputs:
            if not 0 <= net < self.n_nets:
                raise NetlistError(f"output net {net} out of range")
            if not driven[net]:
                raise NetlistError(f"output net {net} is undriven")
        for net in range(self.n_nets):
            if not driven[net]:
                raise NetlistError(f"net {net} is undriven (dangling)")
        self.levelize()  # raises on cycles

    def levelize(self) -> List[int]:
        """Assign a topological level to every net.

        Constants and primary inputs are level 0; a gate output is one more
        than the maximum level of its inputs.

        Returns:
            Per-net level list.

        Raises:
            NetlistError: If the gate graph contains a combinational cycle.
        """
        level: List[Optional[int]] = [None] * self.n_nets
        level[CONST0] = level[CONST1] = 0
        for net in self.inputs:
            level[net] = 0
        remaining = list(self.gates)
        while remaining:
            progressed = False
            still: List[Gate] = []
            for gate in remaining:
                in_levels = [level[n] for n in gate.inputs]
                if all(lv is not None for lv in in_levels):
                    level[gate.output] = 1 + max(in_levels)  # type: ignore[arg-type]
                    progressed = True
                else:
                    still.append(gate)
            if not progressed:
                raise NetlistError(
                    f"combinational cycle involving {len(still)} gates"
                )
            remaining = still
        return [lv if lv is not None else 0 for lv in level]

    def depth(self) -> int:
        """Longest combinational path length, in gate levels."""
        levels = self.levelize()
        return max(levels) if levels else 0
