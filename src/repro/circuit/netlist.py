"""Structural netlist data model.

A :class:`Netlist` is a flat, single-output-per-gate, acyclic network of
library gates over integer-numbered nets.  It is deliberately minimal: module
generators build netlists through :class:`repro.circuit.builder.NetlistBuilder`
and the simulator consumes them through
:class:`repro.circuit.compiled.CompiledNetlist`.

Net numbering convention:
    * net ``0`` is constant 0, net ``1`` is constant 1 (always present);
    * primary inputs come next, in declaration order;
    * internal nets follow in creation order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .technology import GATE_TYPES, GateType, gate_type

CONST0 = 0
CONST1 = 1

#: Instrumentation of :meth:`Netlist.levelize`: ``gate_visits`` counts how
#: many times a gate's level was computed since process start.  Kahn-style
#: propagation touches every gate exactly once per call, so tests pin
#: ``gate_visits == n_gates`` for a single levelization of any netlist —
#: a regression guard against reintroducing the old quadratic
#: scan-until-settled loop (O(gates x depth) on ripple-carry chains).
LEVELIZE_STATS: Dict[str, int] = {"calls": 0, "gate_visits": 0, "cache_hits": 0}


@dataclass(frozen=True)
class Gate:
    """One gate instance: a library cell wired to nets.

    Attributes:
        type_name: Name of the library cell (key into the technology library).
        inputs: Net ids feeding the input pins, in pin order.
        output: Net id driven by the gate.
    """

    type_name: str
    inputs: Tuple[int, ...]
    output: int

    @property
    def gate_type(self) -> GateType:
        return GATE_TYPES[self.type_name]


class NetlistError(ValueError):
    """Raised when a netlist is structurally invalid."""


@dataclass
class Netlist:
    """A combinational gate network.

    Attributes:
        name: Human-readable module name.
        n_nets: Total number of nets (constants + inputs + internal).
        inputs: Primary-input net ids, in port order.
        outputs: Primary-output net ids, in port order.
        gates: Gate instances.
        net_names: Optional debug names for nets.
    """

    name: str
    n_nets: int
    inputs: List[int]
    outputs: List[int]
    gates: List[Gate]
    net_names: Dict[int, str] = field(default_factory=dict)
    # Memoized levelize() result plus the (n_nets, n_gates) shape it was
    # computed for.  Rebuilding a netlist (builder, mutation helpers)
    # creates a fresh instance, so staleness can only arise from in-place
    # topology edits that keep both counts — call invalidate_levels()
    # after such surgery.
    _levels_cache: Optional[List[int]] = field(
        default=None, repr=False, compare=False
    )
    _levels_key: Optional[Tuple[int, int]] = field(
        default=None, repr=False, compare=False
    )

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def n_inputs(self) -> int:
        return len(self.inputs)

    @property
    def n_gates(self) -> int:
        return len(self.gates)

    def cell_counts(self) -> Dict[str, int]:
        """Return a ``{cell name: instance count}`` histogram."""
        counts: Dict[str, int] = {}
        for gate in self.gates:
            counts[gate.type_name] = counts.get(gate.type_name, 0) + 1
        return counts

    def driver_of(self) -> Dict[int, Gate]:
        """Map each gate-driven net to its driving gate."""
        return {g.output: g for g in self.gates}

    def fanout_counts(self) -> List[int]:
        """Number of gate input pins attached to each net."""
        fanout = [0] * self.n_nets
        for gate in self.gates:
            for net in gate.inputs:
                fanout[net] += 1
        return fanout

    # ------------------------------------------------------------------
    # Validation and levelization
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural well-formedness.

        Raises:
            NetlistError: On out-of-range nets, multiple drivers, undriven
                internal nets, unknown cells, wrong pin counts, or
                combinational cycles.
        """
        driven = [False] * self.n_nets
        driven[CONST0] = driven[CONST1] = True
        for net in self.inputs:
            if not 0 <= net < self.n_nets:
                raise NetlistError(f"input net {net} out of range")
            if driven[net]:
                raise NetlistError(f"input net {net} declared twice or constant")
            driven[net] = True
        for gate in self.gates:
            gtype = gate_type(gate.type_name)
            if len(gate.inputs) != gtype.n_inputs:
                raise NetlistError(
                    f"{gate.type_name} expects {gtype.n_inputs} inputs, "
                    f"got {len(gate.inputs)}"
                )
            for net in gate.inputs:
                if not 0 <= net < self.n_nets:
                    raise NetlistError(f"gate input net {net} out of range")
            if not 0 <= gate.output < self.n_nets:
                raise NetlistError(f"gate output net {gate.output} out of range")
            if driven[gate.output]:
                raise NetlistError(f"net {gate.output} has multiple drivers")
            driven[gate.output] = True
        for net in self.outputs:
            if not 0 <= net < self.n_nets:
                raise NetlistError(f"output net {net} out of range")
            if not driven[net]:
                raise NetlistError(f"output net {net} is undriven")
        for net in range(self.n_nets):
            if not driven[net]:
                raise NetlistError(f"net {net} is undriven (dangling)")
        self.levelize()  # raises on cycles

    def invalidate_levels(self) -> None:
        """Drop the memoized :meth:`levelize` result after in-place edits."""
        self._levels_cache = None
        self._levels_key = None

    def levelize(self) -> List[int]:
        """Assign a topological level to every net.

        Constants and primary inputs are level 0; a gate output is one more
        than the maximum level of its inputs.  Kahn-style worklist
        propagation — each gate is resolved exactly once when its last
        pending input resolves, so the cost is O(nets + gate pins) rather
        than one full scan of the remaining gates per level (which was
        quadratic on ripple-carry chains).  The result is memoized on the
        instance (``validate()`` and ``CompiledNetlist`` both need it;
        without the memo every compile levelized twice).

        Returns:
            Per-net level list (a copy; mutating it cannot corrupt the
            memo).

        Raises:
            NetlistError: If the gate graph contains a combinational cycle.
        """
        key = (self.n_nets, len(self.gates))
        if self._levels_cache is not None and self._levels_key == key:
            LEVELIZE_STATS["cache_hits"] += 1
            return list(self._levels_cache)
        LEVELIZE_STATS["calls"] += 1

        level: List[int] = [0] * self.n_nets
        # Pending gate-driven inputs per gate; gates fed only by constants
        # and primary inputs seed the worklist.
        gate_of_output: Dict[int, int] = {
            g.output: i for i, g in enumerate(self.gates)
        }
        consumers: Dict[int, List[int]] = {}
        pending = [0] * len(self.gates)
        ready: List[int] = []
        for index, gate in enumerate(self.gates):
            count = 0
            for net in gate.inputs:
                if net in gate_of_output:
                    count += 1
                    consumers.setdefault(net, []).append(index)
            pending[index] = count
            if count == 0:
                ready.append(index)

        resolved = 0
        while ready:
            index = ready.pop()
            gate = self.gates[index]
            level[gate.output] = 1 + max(level[n] for n in gate.inputs)
            resolved += 1
            LEVELIZE_STATS["gate_visits"] += 1
            for consumer in consumers.get(gate.output, ()):
                pending[consumer] -= 1
                if pending[consumer] == 0:
                    ready.append(consumer)
        if resolved != len(self.gates):
            raise NetlistError(
                f"combinational cycle involving "
                f"{len(self.gates) - resolved} gates"
            )
        self._levels_cache = level
        self._levels_key = key
        return list(level)

    def depth(self) -> int:
        """Longest combinational path length, in gate levels."""
        levels = self.levelize()
        return max(levels) if levels else 0
