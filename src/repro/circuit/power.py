"""Switched-capacitance power simulation (the PowerMill surrogate).

:class:`PowerSimulator` turns a stream of input vectors into a per-cycle
charge trace: for every consecutive vector pair ``(u, v)`` the circuit is
settled under ``u`` (zero delay), then relaxed to ``v`` with the glitch-aware
unit-delay engine, and the cycle charge is the capacitance-weighted toggle
count.  Charge units are normalized (gate-capacitance units); the paper only
ever compares relative errors against the reference simulator, never absolute
numbers across tools.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from .compiled import CompiledNetlist
from .netlist import Netlist
from .simulate import functional_values, unit_delay_transition, zero_delay_toggles


@dataclass(frozen=True)
class PowerTrace:
    """Result of simulating a pattern stream.

    Attributes:
        charge: Per-cycle charge, one entry per consecutive input pair
            (length ``n_patterns - 1``).
        total_toggles: Per-cycle total toggle count (same length).
    """

    charge: np.ndarray
    total_toggles: np.ndarray

    @property
    def n_cycles(self) -> int:
        return len(self.charge)

    @property
    def average_charge(self) -> float:
        return float(self.charge.mean()) if self.n_cycles else 0.0

    @property
    def total_charge(self) -> float:
        return float(self.charge.sum())


class PowerSimulator:
    """Per-cycle charge simulation for one combinational module.

    Args:
        netlist: Module netlist (compiled lazily if a raw netlist is given).
        glitch_aware: If True (default) use the unit-delay engine, which
            counts glitch toggles; if False count only settled-value changes
            (the zero-delay ablation).
        glitch_weight: Charge weight of glitch toggles (toggles beyond the
            settled-value change of a net).  1.0 counts full swings — the
            conservative unit-delay assumption; real gates filter some
            glitches inertially, so values in (0, 1) model partial swings.
            Ignored when ``glitch_aware`` is False.
        chunk_size: Transitions simulated per vectorized batch, bounding
            peak memory (``~3 * n_nets * chunk_size`` bytes of booleans).
    """

    def __init__(
        self,
        netlist: Netlist | CompiledNetlist,
        glitch_aware: bool = True,
        glitch_weight: float = 1.0,
        chunk_size: int = 2048,
    ):
        if isinstance(netlist, CompiledNetlist):
            self.compiled = netlist
        else:
            self.compiled = CompiledNetlist(netlist)
        self.glitch_aware = glitch_aware
        if not 0.0 <= glitch_weight <= 1.0:
            raise ValueError("glitch_weight must be in [0, 1]")
        self.glitch_weight = float(glitch_weight)
        self.chunk_size = int(chunk_size)
        if self.chunk_size <= 0:
            raise ValueError("chunk_size must be positive")

    @property
    def n_inputs(self) -> int:
        return len(self.compiled.netlist.inputs)

    # ------------------------------------------------------------------
    def simulate(self, input_bits: np.ndarray) -> PowerTrace:
        """Simulate a stream of input vectors.

        Args:
            input_bits: ``[n_patterns, n_inputs]`` boolean matrix of
                consecutive input vectors.

        Returns:
            A :class:`PowerTrace` with ``n_patterns - 1`` cycles.
        """
        input_bits = np.asarray(input_bits, dtype=bool)
        if input_bits.ndim != 2 or input_bits.shape[1] != self.n_inputs:
            raise ValueError(
                f"expected [n, {self.n_inputs}] input bits, got {input_bits.shape}"
            )
        n_cycles = input_bits.shape[0] - 1
        if n_cycles < 1:
            return PowerTrace(
                charge=np.zeros(0), total_toggles=np.zeros(0, dtype=np.int64)
            )
        charge = np.empty(n_cycles, dtype=np.float64)
        total = np.empty(n_cycles, dtype=np.int64)
        caps = self.compiled.net_caps
        for start in range(0, n_cycles, self.chunk_size):
            stop = min(start + self.chunk_size, n_cycles)
            old_vecs = input_bits[start:stop]
            new_vecs = input_bits[start + 1 : stop + 1]
            settled = functional_values(self.compiled, old_vecs)
            if self.glitch_aware:
                final, toggles = unit_delay_transition(
                    self.compiled, settled, new_vecs
                )
                if self.glitch_weight != 1.0:
                    # Split functional toggles (settled-value changes, full
                    # swing) from glitch toggles (extra transitions, partial
                    # swing weighted by glitch_weight).
                    functional = zero_delay_toggles(self.compiled, settled, final)
                    glitch = toggles.astype(np.float64) - functional
                    weighted = functional + self.glitch_weight * glitch
                    charge[start:stop] = caps @ weighted
                    total[start:stop] = toggles.sum(axis=0)
                    continue
            else:
                settled_new = functional_values(self.compiled, new_vecs)
                toggles = zero_delay_toggles(self.compiled, settled, settled_new)
                # Input pin charging is counted in both modes.
            charge[start:stop] = caps @ toggles
            total[start:stop] = toggles.sum(axis=0)
        return PowerTrace(charge=charge, total_toggles=total)

    def average_charge(self, input_bits: np.ndarray) -> float:
        """Convenience: mean per-cycle charge over a stream."""
        return self.simulate(input_bits).average_charge
