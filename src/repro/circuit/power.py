"""Switched-capacitance power simulation (the PowerMill surrogate).

:class:`PowerSimulator` turns a stream of input vectors into a per-cycle
charge trace: for every consecutive vector pair ``(u, v)`` the circuit is
settled under ``u`` (zero delay), then relaxed to ``v`` with the glitch-aware
unit-delay engine, and the cycle charge is the capacitance-weighted toggle
count.  Charge units are normalized (gate-capacitance units); the paper only
ever compares relative errors against the reference simulator, never absolute
numbers across tools.

Three interchangeable kernels produce the trace (see docs/SIMULATION.md):

* ``engine="bool"`` — the original byte-per-value matrices of
  :mod:`repro.circuit.simulate`;
* ``engine="packed"`` — the bit-packed kernels of
  :mod:`repro.circuit.packed`, 64 transitions per ``uint64`` word;
* ``engine="compiled"`` — the straight-line instruction tape of
  :mod:`repro.circuit.program`: the packed lane layout plus fused
  (level, type) instructions and event-driven relaxation (no per-step
  full-matrix work);
* ``engine="auto"`` (default) — packed for streams long enough to fill
  words, boolean otherwise (and on hosts without packed support).

Bit-for-bit parity between the engines is the contract: all feed the
*identical* dense toggle matrices (in net order) into the identical charge
accounting, so ``PowerTrace.charge`` and ``total_toggles`` match exactly,
not just to tolerance.  The parity suites in
``tests/circuit/test_packed.py`` and ``tests/circuit/test_program.py``
enforce this across every registered module kind.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from .._compat import pop_renamed_kwarg
from ..obs.events import EVENTS
from ..obs.tracing import span
from .compiled import CompiledNetlist
from .netlist import Netlist
from .packed import (
    PACKED_AVAILABLE,
    extract_lane,
    inject_lane,
    n_words_for,
    pack_lanes,
    packed_functional_values,
    packed_unit_delay_transition,
    unpack_lanes,
)
from .native import decode_native, native_decode, native_tables
from .program import compile_program, decode_planes
from .simulate import functional_values, unit_delay_transition, zero_delay_toggles

#: Engine names accepted by :class:`PowerSimulator`.
ENGINES = ("auto", "bool", "packed", "compiled")

#: Default chunk sizes (transitions per vectorized batch) per engine.
#: Equal on purpose: benchmarking showed the packed engine is *fastest* at
#: the boolean default (the decode/accounting temporaries stay
#: cache-resident), and identical chunk boundaries make default-configured
#: engines bit-identical in ``charge`` too, not just in toggles (float
#: summation order matches chunk by chunk).
DEFAULT_CHUNK_BOOL = 2048
DEFAULT_CHUNK_PACKED = 2048
DEFAULT_CHUNK_COMPILED = 2048

#: Streams shorter than this gain nothing from packing (the pack/unpack
#: overhead exceeds one word's worth of lane parallelism).
AUTO_PACKED_MIN_CYCLES = 64


@dataclass(frozen=True)
class SimulationStats:
    """Telemetry of one :meth:`PowerSimulator.simulate` call.

    Attributes:
        engine: Resolved engine that produced the trace
            ("bool"/"packed"/"compiled").
        n_cycles: Transitions simulated.
        total_toggles: Sum of per-cycle toggle counts over the run.
        seconds: Wall-clock time of the call.
    """

    engine: str
    n_cycles: int
    total_toggles: int
    seconds: float


@dataclass(frozen=True)
class PowerTrace:
    """Result of simulating a pattern stream.

    Attributes:
        charge: Per-cycle charge, one entry per consecutive input pair
            (length ``n_patterns - 1``).
        total_toggles: Per-cycle total toggle count (same length).
    """

    charge: np.ndarray
    total_toggles: np.ndarray

    @property
    def n_cycles(self) -> int:
        return len(self.charge)

    @property
    def average_charge(self) -> float:
        return float(self.charge.mean()) if self.n_cycles else 0.0

    @property
    def total_charge(self) -> float:
        return float(self.charge.sum())


def _totals(toggles: np.ndarray) -> np.ndarray:
    """Per-cycle toggle totals from a ``uint8`` toggle matrix.

    Exactly ``toggles.sum(axis=0, dtype=np.int64)`` — integer sums have a
    single correct answer — but accumulating in ``uint32`` first keeps the
    reduction in a quarter of the memory traffic, which is measurable at
    chunk scale.  Safe while ``n_nets * 255 < 2**32`` (tens of millions of
    nets; far beyond any module here).
    """
    return toggles.sum(axis=0, dtype=np.uint32).astype(np.int64)


class PowerSimulator:
    """Per-cycle charge simulation for one combinational module.

    Args:
        netlist: Module netlist (compiled lazily if a raw netlist is given).
        glitch_aware: If True (default) use the unit-delay engine, which
            counts glitch toggles; if False count only settled-value changes
            (the zero-delay ablation).
        glitch_weight: Charge weight of glitch toggles (toggles beyond the
            settled-value change of a net).  1.0 counts full swings — the
            conservative unit-delay assumption; real gates filter some
            glitches inertially, so values in (0, 1) model partial swings.
            Ignored when ``glitch_aware`` is False.
        chunk_size: Transitions simulated per vectorized batch, bounding
            peak memory (``~3 * n_nets * chunk_size`` bytes of booleans, an
            eighth of that packed).  ``None`` picks an engine-appropriate
            default.
        engine: ``"bool"``, ``"packed"``, ``"compiled"`` or ``"auto"``
            (see module doc).  ``"compiled"`` is opt-in: it shares the
            packed lane layout (and its little-endian requirement) and is
            the fastest on long streams, but ``"auto"`` stays conservative
            and resolves to ``"packed"``.

    Attributes:
        last_stats: :class:`SimulationStats` of the most recent
            :meth:`simulate` call (``None`` before the first).
    """

    def __init__(
        self,
        netlist: Netlist | CompiledNetlist,
        glitch_aware: bool = True,
        glitch_weight: float = 1.0,
        chunk_size: Optional[int] = None,
        engine: Optional[str] = None,
        **legacy,
    ):
        # PR 5 rename: ``simulation_engine=`` → ``engine=`` (warns once).
        engine = pop_renamed_kwarg(
            legacy, "simulation_engine", "engine", "PowerSimulator", engine
        )
        if legacy:
            raise TypeError(
                f"unexpected keyword arguments: {sorted(legacy)}"
            )
        if engine is None:
            engine = "auto"
        if isinstance(netlist, CompiledNetlist):
            self.compiled = netlist
        else:
            self.compiled = CompiledNetlist(netlist)
        self.glitch_aware = glitch_aware
        if not 0.0 <= glitch_weight <= 1.0:
            raise ValueError("glitch_weight must be in [0, 1]")
        self.glitch_weight = float(glitch_weight)
        if chunk_size is not None:
            chunk_size = int(chunk_size)
            if chunk_size <= 0:
                raise ValueError("chunk_size must be positive")
        self.chunk_size = chunk_size
        if engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
        if engine in ("packed", "compiled") and not PACKED_AVAILABLE:
            raise ValueError(
                f"engine={engine!r} needs a little-endian host; use 'auto'"
            )
        self.engine = engine
        self.last_stats: Optional[SimulationStats] = None
        # Reusable buffers of the compiled engine's fused native path,
        # keyed by (n_lanes, n_words); see _fused_buffers.
        self._fused_cache: Dict[Tuple[int, int], Tuple[
            np.ndarray, np.ndarray, np.ndarray]] = {}

    @property
    def n_inputs(self) -> int:
        return len(self.compiled.netlist.inputs)

    # ------------------------------------------------------------------
    def resolve_engine(self, n_cycles: int) -> str:
        """The engine a stream of ``n_cycles`` transitions would use."""
        if self.engine != "auto":
            return self.engine
        if PACKED_AVAILABLE and n_cycles >= AUTO_PACKED_MIN_CYCLES:
            return "packed"
        return "bool"

    def _resolve_chunk(self, engine: str) -> int:
        if self.chunk_size is not None:
            return self.chunk_size
        return {
            "packed": DEFAULT_CHUNK_PACKED,
            "compiled": DEFAULT_CHUNK_COMPILED,
        }.get(engine, DEFAULT_CHUNK_BOOL)

    # ------------------------------------------------------------------
    def simulate(self, input_bits: np.ndarray) -> PowerTrace:
        """Simulate a stream of input vectors.

        Args:
            input_bits: ``[n_patterns, n_inputs]`` boolean matrix of
                consecutive input vectors.

        Returns:
            A :class:`PowerTrace` with ``n_patterns - 1`` cycles.
        """
        started = time.perf_counter()
        input_bits = np.asarray(input_bits, dtype=bool)
        if input_bits.ndim != 2 or input_bits.shape[1] != self.n_inputs:
            raise ValueError(
                f"expected [n, {self.n_inputs}] input bits, got {input_bits.shape}"
            )
        n_cycles = input_bits.shape[0] - 1
        engine = self.resolve_engine(max(n_cycles, 0))
        if n_cycles < 1:
            self.last_stats = SimulationStats(
                engine=engine, n_cycles=0, total_toggles=0,
                seconds=time.perf_counter() - started,
            )
            return PowerTrace(
                charge=np.zeros(0), total_toggles=np.zeros(0, dtype=np.int64)
            )
        charge = np.empty(n_cycles, dtype=np.float64)
        total = np.empty(n_cycles, dtype=np.int64)
        caps = self.compiled.net_caps
        run_chunk = {
            "packed": self._packed_chunk,
            "compiled": self._compiled_chunk,
        }.get(engine, self._bool_chunk)
        # Glitch weighting needs the functional (settled-value) toggles to
        # split full swings from partial ones; weight 1.0 does not.
        need_functional = self.glitch_aware and self.glitch_weight != 1.0
        # The settled state of each chunk's first vector equals the relaxed
        # final column of the previous chunk (unique fixpoint of an acyclic
        # network), so it is carried across chunks instead of re-settled.
        boundary: Optional[np.ndarray] = None
        chunk_size = self._resolve_chunk(engine)
        with span("sim.stream", engine=engine, n_cycles=n_cycles):
            for start in range(0, n_cycles, chunk_size):
                stop = min(start + chunk_size, n_cycles)
                old_vecs = input_bits[start:stop]
                new_vecs = input_bits[start + 1 : stop + 1]
                with span("sim.chunk", rows=stop - start):
                    toggles, functional, boundary, pre = run_chunk(
                        old_vecs, new_vecs, boundary, need_functional
                    )
                    pre_charge, pre_totals = (
                        pre if pre is not None else (None, None)
                    )
                    if need_functional:
                        # Split functional toggles (settled-value changes,
                        # full swing) from glitch toggles (extra
                        # transitions, partial swing weighted by
                        # glitch_weight).  Integer counts are converted
                        # to float64 once, up front: the conversion is
                        # exact (counts are tiny), routes the matmul
                        # through BLAS instead of numpy's slow integer
                        # inner loop, and keeps every arithmetic step
                        # dtype-identical for all engines (the
                        # bit-for-bit parity contract).
                        toggles_f = toggles.astype(np.float64)
                        functional_f = functional.astype(np.float64)
                        glitch = toggles_f - functional_f
                        weighted = functional_f + self.glitch_weight * glitch
                        charge[start:stop] = caps @ weighted
                    elif pre_charge is not None:
                        charge[start:stop] = pre_charge
                    else:
                        toggles_f = toggles.astype(np.float64)
                        charge[start:stop] = caps @ toggles_f
                    if pre_totals is not None:
                        total[start:stop] = pre_totals
                    else:
                        total[start:stop] = toggles.sum(
                            axis=0, dtype=np.int64
                        )
        seconds = time.perf_counter() - started
        total_toggles = int(total.sum())
        self.last_stats = SimulationStats(
            engine=engine,
            n_cycles=n_cycles,
            total_toggles=total_toggles,
            seconds=seconds,
        )
        EVENTS.sim_transitions.inc(n_cycles, engine=engine)
        EVENTS.sim_toggles.inc(total_toggles)
        EVENTS.sim_seconds.inc(seconds)
        return PowerTrace(charge=charge, total_toggles=total)

    # ------------------------------------------------------------------
    # Engine chunk kernels.  All return the *same* dense representation —
    # ``(toggles [n_nets, L], functional | None, boundary, pre | None)``
    # with integer counts (the exact dtype may differ; the shared
    # accounting above converts to float64 before any arithmetic) — so the
    # charge math is shared verbatim and the engines stay bit-identical by
    # construction.  ``pre`` is an optional ``(charge | None, totals)``
    # pair a kernel may supply when it can compute those cheaper than the
    # shared path: ``totals`` ([L] int64) must be exactly equal to
    # ``toggles.sum(axis=0)`` (integer arithmetic, no rounding freedom),
    # and a kernel ``charge`` must come from the *same* BLAS dgemv on a
    # float64 matrix holding bit-for-bit the values the shared astype
    # would produce — never from a reassociated or mixed-precision
    # shortcut.  A kernel supplying both may return ``toggles=None``
    # (only legal when ``need_functional`` is False).
    # ------------------------------------------------------------------
    def _bool_chunk(
        self,
        old_vecs: np.ndarray,
        new_vecs: np.ndarray,
        boundary: Optional[np.ndarray],
        need_functional: bool,
    ) -> Tuple[np.ndarray, Optional[np.ndarray], np.ndarray,
               Optional[np.ndarray]]:
        if boundary is None:
            settled = functional_values(self.compiled, old_vecs)
        else:
            # Carried column: only vectors after the first need settling.
            rest = functional_values(self.compiled, old_vecs[1:])
            settled = np.concatenate([boundary[:, None], rest], axis=1)
        if self.glitch_aware:
            final, toggles = unit_delay_transition(
                self.compiled, settled, new_vecs
            )
            functional = (
                zero_delay_toggles(self.compiled, settled, final)
                if need_functional else None
            )
            return toggles, functional, final[:, -1].copy(), None
        settled_new = functional_values(self.compiled, new_vecs)
        toggles = zero_delay_toggles(self.compiled, settled, settled_new)
        # Input pin charging is counted in both modes.
        return toggles, None, settled_new[:, -1].copy(), None

    def _packed_chunk(
        self,
        old_vecs: np.ndarray,
        new_vecs: np.ndarray,
        boundary: Optional[np.ndarray],
        need_functional: bool,
    ) -> Tuple[np.ndarray, Optional[np.ndarray], np.ndarray,
               Optional[np.ndarray]]:
        n_lanes = len(old_vecs)
        n_words = n_words_for(n_lanes)
        old_packed = pack_lanes(old_vecs.T, n_words)
        new_packed = pack_lanes(new_vecs.T, n_words)
        settled = packed_functional_values(self.compiled, old_packed, n_words)
        if boundary is not None:
            # The levelized pass settles all lanes of a word in one shot,
            # so lane 0 costs nothing extra — but the carried column is the
            # authoritative value, so inject it (bit-identical by the
            # unique-fixpoint argument; keeps both engines' carry honest).
            inject_lane(settled, 0, boundary)
        if self.glitch_aware:
            final, accumulator = packed_unit_delay_transition(
                self.compiled, settled, new_packed
            )
            if accumulator.planes:
                toggles = accumulator.decode(n_lanes)
            else:
                toggles = np.zeros(
                    (self.compiled.n_nets, n_lanes), dtype=np.uint8
                )
            functional = (
                unpack_lanes(settled ^ final, n_lanes)
                if need_functional else None
            )
            return toggles, functional, extract_lane(final, n_lanes - 1), \
                None
        settled_new = packed_functional_values(
            self.compiled, new_packed, n_words
        )
        toggles = unpack_lanes(settled ^ settled_new, n_lanes)
        return toggles, None, extract_lane(settled_new, n_lanes - 1), None

    def _compiled_chunk(
        self,
        old_vecs: np.ndarray,
        new_vecs: np.ndarray,
        boundary: Optional[np.ndarray],
        need_functional: bool,
    ) -> Tuple[np.ndarray, Optional[np.ndarray], np.ndarray,
               Optional[np.ndarray]]:
        # Same lane layout as the packed engine, but values live in
        # *program row order*; everything handed back to the shared
        # accounting is permuted to net order through row_of_net (a full
        # permutation — lut_fold is never enabled here, it would break
        # the glitch parity contract).  Permutation happens on the packed
        # words (tiny) before any unpack/decode, never on dense matrices.
        # The boundary column stays in program order: it is only ever
        # consumed by this kernel.
        program = compile_program(self.compiled)
        n_lanes = len(old_vecs)
        n_words = n_words_for(n_lanes)
        old_packed = pack_lanes(old_vecs.T, n_words)
        new_packed = pack_lanes(new_vecs.T, n_words)
        settled = program.settle(old_packed, n_words)
        if boundary is not None:
            inject_lane(settled, 0, boundary)
        row_of_net = program.row_of_net
        if self.glitch_aware:
            # Fused native path: relax into a persistent plane buffer,
            # then one C pass decodes planes -> net-ordered float64
            # counts + per-lane totals into persistent buffers (no
            # multi-MB temporaries per chunk — the allocation churn, not
            # the arithmetic, dominates sustained multi-chunk runs).
            # The dgemv then runs on bit-for-bit the matrix the shared
            # astype path would build, so charge stays bit-identical.
            fused = (
                not need_functional
                and program.max_planes <= 8
                and native_tables(program) is not None
                and native_decode() is not None
            )
            if fused:
                planes_buf, counts_f, totals_u32 = self._fused_buffers(
                    program, n_lanes, n_words
                )
                final, accumulator, _ = program.relax(
                    settled, new_packed, planes_buffer=planes_buf
                )
                n_used = len(accumulator.planes)
                if n_used == 0:
                    pre = (np.zeros(n_lanes),
                           np.zeros(n_lanes, dtype=np.int64))
                else:
                    row64 = program.__dict__.get("_row_of_net64")
                    if row64 is None:
                        row64 = np.ascontiguousarray(
                            row_of_net, dtype=np.int64
                        )
                        program.__dict__["_row_of_net64"] = row64
                    decode_native(
                        planes_buf[:n_used], row64, n_lanes,
                        counts_f, totals_u32,
                    )
                    chunk_charge = np.empty(n_lanes)
                    np.dot(self.compiled.net_caps, counts_f,
                           out=chunk_charge)
                    pre = (chunk_charge, totals_u32.astype(np.int64))
                return None, None, extract_lane(final, n_lanes - 1), pre
            final, accumulator, _ = program.relax(settled, new_packed)
            if accumulator.planes:
                toggles = decode_planes(
                    [p[row_of_net] for p in accumulator.planes], n_lanes
                )
            else:
                toggles = np.zeros(
                    (self.compiled.n_nets, n_lanes), dtype=np.uint8
                )
            functional = (
                unpack_lanes((settled ^ final)[row_of_net], n_lanes)
                if need_functional else None
            )
            return (toggles, functional,
                    extract_lane(final, n_lanes - 1),
                    (None, _totals(toggles)))
        settled_new = program.settle(new_packed, n_words)
        toggles = unpack_lanes(
            (settled ^ settled_new)[row_of_net], n_lanes
        )
        return (toggles, None,
                extract_lane(settled_new, n_lanes - 1),
                (None, _totals(toggles)))

    def _fused_buffers(
        self, program, n_lanes: int, n_words: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Persistent per-(lanes, words) buffers for the fused native path.

        One plane buffer, one float64 count matrix and one uint32 totals
        vector, reused across chunks: fresh multi-MB allocations per
        chunk thrash the allocator and roughly triple the decode +
        convert cost in sustained runs.
        """
        key = (n_lanes, n_words)
        bufs = self._fused_cache.get(key)
        if bufs is None:
            bufs = (
                np.zeros(
                    (program.max_planes, program.n_rows, n_words),
                    dtype=np.uint64,
                ),
                np.empty((self.compiled.n_nets, n_lanes), dtype=np.float64),
                np.empty(n_lanes, dtype=np.uint32),
            )
            self._fused_cache[key] = bufs
        return bufs

    def average_charge(self, input_bits: np.ndarray) -> float:
        """Convenience: mean per-cycle charge over a stream."""
        return self.simulate(input_bits).average_charge
