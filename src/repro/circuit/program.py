"""Compilation of netlists into straight-line bitwise programs.

The packed engine (:mod:`repro.circuit.packed`) already evaluates 64
transitions per ``uint64`` word, but its unit-delay relaxation still pays
per-step costs proportional to the *whole* circuit: every synchronous step
re-evaluates every type group over every gate, copies the full value
matrix, and XOR-compares and ripple-adds all of it — even though after
step ``t`` only nets at level ``>= t`` can still change (a level-``L``
net depends on paths of length at most ``L``, so it is stable from step
``L`` on).

:func:`compile_program` lowers a
:class:`~repro.circuit.compiled.CompiledNetlist` once into a
:class:`BitwiseProgram` that exploits that wavefront structure with plain
slice arithmetic:

* **Class canonicalization.**  Every library cell maps onto one of five
  three-pin evaluation classes — ``AND`` (AND/OR/NAND/NOR/INV/BUF via
  De Morgan), ``XOR`` (XOR/XNOR), ``MAJ``, ``MUX`` and ``AOI``
  (AOI21/OAI21) — plus per-gate input/output inversion mask columns and
  constant pad pins (:data:`_CANON`).  Seventeen cell types collapse to
  at most five relax groups, so the per-step Python dispatch cost drops
  with them.
* **Row layout.**  Row 0 is constant 0, row 1 constant 1, rows
  ``2 .. 2 + n_inputs`` the primary inputs in port order; gate outputs
  follow in per-*class* blocks, each block sorted by level.  Two slice
  families fall out of this single layout: every (level, class) run is
  contiguous (the settle tape writes pure slices), and the gates of one
  class at level ``>= t`` are a contiguous *suffix* of their block (the
  relaxation window shrinks by slicing, no index arrays in the hot loop).
* **Instruction tape.**  All gates of one (level, class) fuse into a
  single instruction whose operand rows are precomputed as one
  ``[3, G]`` index matrix; :meth:`BitwiseProgram.settle` is one
  ascending pass over the tape — a fancy gather, a handful of vectorized
  bitwise ops, one slice store per instruction, zero per-gate Python
  dispatch.
* **Windowed relaxation.**  :meth:`BitwiseProgram.relax` runs the
  synchronous unit-delay dynamics with a shrinking active window: at step
  ``t`` it evaluates, per class block, only the suffix of gates at level
  ``>= t`` (reads are staged before any write, exactly like the other
  engines, so the snapshot semantics — and therefore every glitch toggle
  — are bit-identical).  Gates below the window are provably settled, so
  skipping them changes nothing; total work is ``sum(levels)`` gate
  evaluations instead of ``depth * n_gates``, a 4-6x reduction on
  arithmetic arrays.  Evaluations run through per-group preallocated
  scratch buffers with ``out=`` kwargs (no temporaries in the hot loop).
  The loop stops at the first step with no change (the synchronous
  fixpoint) and can never need more than ``depth`` steps.

Toggle accounting reuses the bit-sliced plane representation of
:class:`~repro.circuit.packed.ToggleAccumulator`, but planes are folded
per *slice* (ripple-carry over ``plane[start:stop]``) so the cost per
step also tracks the active window, and they are decoded via a single
stacked ``unpackbits`` + weighted sum (:func:`decode_planes`) instead of
one unpack per plane.  Decoded counts come back in program-row order;
callers scatter the (tiny, packed) planes to net order through
:attr:`BitwiseProgram.row_of_net` before decoding, after which the shared
charge accounting in :mod:`repro.circuit.power` is verbatim-identical
across engines.

**LUT folding** (``lut_fold=True``) additionally collapses single-fanout
cones of up to ``lut_max_gates`` gates with at most 3 distinct external
inputs into one 8-entry lookup instruction (evaluated as a sum of
minterm products against per-cone minterm masks; folded cones form their
own block/relax group).  Folding compresses the cone's internal unit
delays into a single delay, which *changes glitch arrival times
downstream* — exact glitch-toggle parity under folding is impossible in
general, so folding is an opt-in approximation for functional evaluation
and approximate power, never used by ``engine="compiled"`` (whose
contract is bit-identical parity).  Interior cone nets lose their rows;
their capacitance is lumped onto the cone root in
:attr:`BitwiseProgram.row_caps`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..obs.events import EVENTS
from ..obs.tracing import span
from .compiled import CompiledNetlist
from .native import native_status, native_tables, relax_native
from .netlist import CONST0, CONST1, Gate
from .packed import ToggleAccumulator, n_words_for, pack_lanes, unpack_lanes
from .technology import GATE_TYPES

#: Program rows of the constant nets (mirrors the net numbering).
ROW_CONST0 = 0
ROW_CONST1 = 1

_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)

#: LUT folding limits: cones are capped at 3 external inputs (an 8-entry
#: table, matching the widest library cell) and this many folded gates.
LUT_MAX_INPUTS = 3
DEFAULT_LUT_MAX_GATES = 4

#: Block name of the folded-cone group (sorts after every library cell).
_LUT_BLOCK = "~LUT"

#: Canonical three-pin evaluation class of every library cell:
#: ``type -> (class, pad_net, input_inversions, output_inversion)``.
#: Pins beyond the cell's real arity are padded with ``pad_net`` (the
#: identity element of the class core: AND pads 1, XOR pads 0; MAJ, MUX
#: and AOI cells are all genuinely 3-pin).  The class core functions are
#:
#: * ``AND``: ``(a ^ ia) & (b ^ ib) & (c ^ ic)`` — with De Morgan
#:   inversions this covers INV, BUF, AND*, OR*, NAND*, NOR*;
#: * ``XOR``: ``a ^ b ^ c`` — input inversions fold into the output one;
#: * ``MAJ``: ``(a & (b | c)) | (b & c)``;
#: * ``MUX``: ``a ^ ((a ^ b) & sel)`` with pins ``(sel, a, b)`` — three
#:   ops instead of the four of ``(a & ~sel) | (b & sel)``;
#: * ``AOI``: ``((a ^ ia) & (b ^ ib)) | (c ^ ic)`` — OAI21 is the AOI
#:   core with every literal inverted (De Morgan again).
#:
#: The final output inversion is applied after the core.  All masks are
#: per-gate ``[G, 1]`` columns, so one block freely mixes, say, AND2 and
#: NOR3 gates.
_CANON: Dict[str, Tuple[str, int, Tuple[int, int, int], int]] = {
    "INV": ("AND", CONST1, (1, 0, 0), 0),
    "BUF": ("AND", CONST1, (0, 0, 0), 0),
    "AND2": ("AND", CONST1, (0, 0, 0), 0),
    "OR2": ("AND", CONST1, (1, 1, 0), 1),
    "NAND2": ("AND", CONST1, (0, 0, 0), 1),
    "NOR2": ("AND", CONST1, (1, 1, 0), 0),
    "AND3": ("AND", CONST1, (0, 0, 0), 0),
    "OR3": ("AND", CONST1, (1, 1, 1), 1),
    "NAND3": ("AND", CONST1, (0, 0, 0), 1),
    "NOR3": ("AND", CONST1, (1, 1, 1), 0),
    "XOR2": ("XOR", CONST0, (0, 0, 0), 0),
    "XNOR2": ("XOR", CONST0, (0, 0, 0), 1),
    "XOR3": ("XOR", CONST0, (0, 0, 0), 0),
    "MAJ3": ("MAJ", CONST0, (0, 0, 0), 0),
    "MUX2": ("MUX", CONST0, (0, 0, 0), 0),
    "AOI21": ("AOI", CONST0, (0, 0, 0), 1),
    "OAI21": ("AOI", CONST0, (1, 1, 1), 0),
}


def _canon_spec(type_name: str) -> Tuple[str, int, Tuple[int, int, int], int]:
    try:
        return _CANON[type_name]
    except KeyError:
        raise KeyError(
            f"gate type {type_name!r} has no canonical evaluation class; "
            f"extend _CANON alongside the technology library"
        ) from None


def _class_eval(
    cls: str,
    x: np.ndarray,
    y: np.ndarray,
    z: np.ndarray,
    t: np.ndarray,
    inv: Sequence[Optional[np.ndarray]],
    out_mask: Optional[np.ndarray],
) -> np.ndarray:
    """Evaluate one canonical class over gathered pin stacks, in place.

    ``x, y, z`` are the writable ``[G, W]`` pin-0/1/2 value stacks (they
    are scribbled on), ``t`` a same-shaped scratch block (used by MAJ
    only), ``inv``/``out_mask`` the per-gate ``[G, 1]`` inversion
    columns (``None`` where no gate in the group inverts).  Returns the
    output stack (a view into one of the four buffers).
    """
    if cls == "XOR":
        np.bitwise_xor(x, y, out=x)
        np.bitwise_xor(x, z, out=x)
        out = x
    elif cls == "MAJ":
        np.bitwise_or(y, z, out=t)
        np.bitwise_and(x, t, out=t)
        np.bitwise_and(y, z, out=y)
        np.bitwise_or(t, y, out=t)
        out = t
    elif cls == "MUX":
        np.bitwise_xor(y, z, out=z)
        np.bitwise_and(z, x, out=z)
        np.bitwise_xor(z, y, out=z)
        out = z
    else:  # AND and AOI share the inversion plumbing.
        if inv[0] is not None:
            np.bitwise_xor(x, inv[0], out=x)
        if inv[1] is not None:
            np.bitwise_xor(y, inv[1], out=y)
        if inv[2] is not None:
            np.bitwise_xor(z, inv[2], out=z)
        np.bitwise_and(x, y, out=x)
        if cls == "AOI":
            np.bitwise_or(x, z, out=x)
        else:
            np.bitwise_and(x, z, out=x)
        out = x
    if out_mask is not None:
        np.bitwise_xor(out, out_mask, out=out)
    return out


def _lut_eval(pins: np.ndarray, masks: Sequence[Optional[np.ndarray]]):
    """Sum-of-minterm-products evaluation of a group of 3-input LUTs.

    ``pins`` is the gathered ``[3, G, n_words]`` operand stack; ``masks``
    holds one ``[G, 1]`` all-ones/all-zeros column per minterm (``None``
    where no cone in the group uses that minterm), broadcast across
    lanes.
    """
    a, b, c = pins
    na, nb, nc = ~a, ~b, ~c
    sel = ((na, a), (nb, b), (nc, c))
    out = np.zeros_like(a)
    for m, mask in enumerate(masks):
        if mask is None:
            continue
        out |= sel[0][m & 1] & sel[1][(m >> 1) & 1] & sel[2][(m >> 2) & 1] \
            & mask
    return out


class Instruction:
    """One fused settle step: all gates of one (level, class), or one
    level's folded cones.

    Attributes:
        level: Topological level of the written rows (tape order).
        kind: ``"op"`` for a native class group, ``"lut"`` for cones.
        name: Canonical class name, or ``"LUT"``.
        inv: Per-pin inversion mask columns (class groups, else ``None``).
        out_mask: Output inversion mask column (or ``None``).
        masks: Minterm mask columns (LUTs only, else ``None``).
        in_rows: ``[3, G]`` operand row indices (one gather).
        start, stop: The contiguous output row slice this instruction
            owns (inside its class block).
        n_gates: Source gates represented (> G for folded cones).
    """

    __slots__ = (
        "level", "kind", "name", "inv", "out_mask", "masks", "in_rows",
        "start", "stop", "n_gates",
    )

    def __init__(self, level, kind, name, inv, out_mask, masks, in_rows,
                 start, stop, n_gates):
        self.level = level
        self.kind = kind
        self.name = name
        self.inv = inv
        self.out_mask = out_mask
        self.masks = masks
        self.in_rows = in_rows
        self.start = start
        self.stop = stop
        self.n_gates = n_gates

    def evaluate(self, values: np.ndarray) -> np.ndarray:
        pins = values[self.in_rows]  # fresh writable [3, G, W] copy
        if self.kind != "op":
            return _lut_eval(pins, self.masks)
        tmp = np.empty_like(pins[0]) if self.name == "MAJ" else pins[0]
        return _class_eval(
            self.name, pins[0], pins[1], pins[2], tmp, self.inv,
            self.out_mask,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Instruction({self.name}@L{self.level}, "
            f"rows[{self.start}:{self.stop}], gates={self.n_gates})"
        )


class RelaxGroup:
    """One class block as seen by the windowed relaxation loop.

    Attributes:
        kind, name, inv, out_mask, masks: As in :class:`Instruction`,
            covering the *whole* block.
        in_rows: ``[3, G]`` operand rows, level-sorted like the block.
        base: First row of the block; the block spans
            ``[base, base + size)``.
        size: Gate (row) count of the block.
        level_first: Plain int list, ``[depth + 2]`` long —
            ``level_first[t]`` is the block position of the first gate at
            level ``>= t``, so the step-``t`` active suffix is
            ``[level_first[t], size)``.
    """

    __slots__ = ("kind", "name", "inv", "out_mask", "masks", "in_rows",
                 "base", "size", "level_first", "_scratch", "_suffix")

    def __init__(self, kind, name, inv, out_mask, masks, in_rows, base,
                 size, level_first):
        self.kind = kind
        self.name = name
        self.inv = inv
        self.out_mask = out_mask
        self.masks = masks
        self.in_rows = in_rows
        self.base = base
        self.size = size
        self.level_first = level_first
        #: n_words -> preallocated [4 * size, n_words] uint64 buffer.
        self._scratch: Dict[int, np.ndarray] = {}
        #: k -> (flat gather index, sliced inv masks, sliced out mask):
        #: the per-suffix constants, built once per distinct window.
        self._suffix: Dict[int, tuple] = {}

    def _suffix_plan(self, k: int) -> tuple:
        plan = self._suffix.get(k)
        if plan is None:
            idx = np.ascontiguousarray(self.in_rows[:, k:]).reshape(-1)
            inv = (None, None, None) if self.inv is None else tuple(
                m if m is None else m[k:] for m in self.inv
            )
            om = None if self.out_mask is None else self.out_mask[k:]
            plan = (idx, inv, om)
            self._suffix[k] = plan
        return plan

    def eval_diff(
        self, values: np.ndarray, k: int, n_words: int
    ) -> Optional[np.ndarray]:
        """Evaluate the suffix from position ``k``; return its XOR diff.

        Reads only (safe while other groups stage against the same
        snapshot); the returned ``[size - k, n_words]`` diff lives in
        this group's private scratch.  ``None`` when nothing changed.
        """
        g = self.size - k
        if self.kind != "op":
            masks = [m if m is None else m[k:] for m in self.masks]
            out = _lut_eval(values[self.in_rows[:, k:]], masks)
        else:
            buf = self._scratch.get(n_words)
            if buf is None:
                buf = np.empty((4 * self.size, n_words), dtype=np.uint64)
                self._scratch[n_words] = buf
            idx, inv, om = self._suffix_plan(k)
            gathered = buf[: 3 * g]
            np.take(values, idx, axis=0, out=gathered)
            out = _class_eval(
                self.name,
                gathered[:g], gathered[g: 2 * g], gathered[2 * g:],
                buf[3 * g: 4 * g],
                inv, om,
            )
        np.bitwise_xor(
            out, values[self.base + k: self.base + self.size], out=out
        )
        if not out.any():
            return None
        return out


class _SuperGate:
    """A candidate LUT cone during folding: gates + external inputs."""

    __slots__ = ("output", "gates", "inputs")

    def __init__(self, output: int, gates: List[Gate], inputs: List[int]):
        self.output = output
        self.gates = gates
        self.inputs = inputs


def _dedup(nets: Sequence[int]) -> List[int]:
    """Order-preserving de-duplication of a net list."""
    return list(dict.fromkeys(nets))


def _fold_cones(
    netlist, levels: np.ndarray, max_gates: int
) -> List[_SuperGate]:
    """Greedily absorb single-fanout children into their unique reader.

    A gate-driven net is foldable when exactly one gate pin reads it and
    it is not a primary output (its row must survive).  Merging keeps the
    cone's external input set at most :data:`LUT_MAX_INPUTS` wide and the
    gate count at most ``max_gates``.  Children are absorbed bottom-up
    (ascending root level) to fixpoint, so chains collapse maximally
    under the caps.  Returns the surviving supergates; single-gate ones
    are emitted as native instructions, multi-gate ones as LUTs.
    """
    fanout: Dict[int, int] = {}
    for gate in netlist.gates:
        for net in gate.inputs:
            fanout[net] = fanout.get(net, 0) + 1
    primary_outputs = set(netlist.outputs)
    sgs: Dict[int, _SuperGate] = {
        g.output: _SuperGate(g.output, [g], _dedup(g.inputs))
        for g in netlist.gates
    }
    changed = True
    while changed:
        changed = False
        for out in sorted(sgs, key=lambda n: (int(levels[n]), n)):
            sg = sgs.get(out)
            if sg is None:
                continue
            for net in list(sg.inputs):
                child = sgs.get(net)
                if (
                    child is None
                    or net in primary_outputs
                    or fanout.get(net, 0) != 1
                    or len(child.gates) + len(sg.gates) > max_gates
                ):
                    continue
                merged = _dedup(
                    child.inputs + [n for n in sg.inputs if n != net]
                )
                if len(merged) > LUT_MAX_INPUTS:
                    continue
                # Child gates are internally topo-ordered and depend only
                # on externals, so prepending keeps the cone topo-sorted.
                sg.gates = child.gates + sg.gates
                sg.inputs = merged
                del sgs[net]
                changed = True
    return [sgs[out] for out in sorted(sgs)]


def _cone_table(sg: _SuperGate) -> int:
    """8-bit truth table of a cone over its (padded) external inputs.

    Minterm ``m`` assigns bit ``j`` of ``m`` to external input ``j``; pad
    pins beyond ``len(sg.inputs)`` are constant 0, so the table simply
    ignores them (``m`` is masked down to the real input count).
    """
    k = len(sg.inputs)
    n_combo = 1 << k
    local: Dict[int, np.ndarray] = {
        CONST0: np.zeros(n_combo, dtype=bool),
        CONST1: np.ones(n_combo, dtype=bool),
    }
    for j, net in enumerate(sg.inputs):
        local[net] = np.array(
            [(m >> j) & 1 for m in range(n_combo)], dtype=bool
        )
    for gate in sg.gates:
        local[gate.output] = GATE_TYPES[gate.type_name].func(
            *[local[n] for n in gate.inputs]
        )
    out_bits = local[sg.output]
    return sum(
        1 << m for m in range(8) if out_bits[m & (n_combo - 1)]
    )


def _minterm_masks(
    tables: Sequence[int],
) -> List[Optional[np.ndarray]]:
    """Per-minterm ``[G, 1]`` all-ones/all-zeros mask columns."""
    masks: List[Optional[np.ndarray]] = []
    for m in range(8):
        bits = np.array([(t >> m) & 1 for t in tables], dtype=bool)
        if not bits.any():
            masks.append(None)
        else:
            masks.append(
                np.where(bits, _ALL_ONES, np.uint64(0)).reshape(-1, 1)
            )
    return masks


def _inv_masks(
    bits_per_pin: np.ndarray,
) -> Tuple[Optional[List[Optional[np.ndarray]]], np.ndarray]:
    """Per-pin ``[G, 1]`` inversion columns from a ``[G, 3]`` bool grid.

    Returns ``(inv, any_bits)`` where ``inv`` is ``None`` when no pin of
    any gate inverts (the common all-plain block) and ``any_bits`` flags
    which pins had inversions (for tape slicing).
    """
    inv: List[Optional[np.ndarray]] = []
    for p in range(3):
        col = bits_per_pin[:, p]
        if not col.any():
            inv.append(None)
        else:
            inv.append(
                np.where(col, _ALL_ONES, np.uint64(0)).reshape(-1, 1)
            )
    if all(m is None for m in inv):
        return None, bits_per_pin.any(axis=0)
    return inv, bits_per_pin.any(axis=0)


def _fold_slice(
    planes: List[np.ndarray],
    full_shape: Tuple[int, int],
    start: int,
    stop: int,
    diff: np.ndarray,
    max_count: int,
) -> None:
    """Ripple-carry add a one-bit change mask into plane slices.

    The slice-local twin of :meth:`ToggleAccumulator.add`: only rows
    ``[start, stop)`` can carry, so each plane is touched over that slice
    in place instead of reallocating the full matrix.

    ``max_count`` is an upper bound on the toggle count any row in the
    slice can hold *after* this add (each relaxation step contributes at
    most one toggle per row, so step ``t`` passes ``t``).  The ripple
    provably dies within ``max_count.bit_length()`` planes, which lets
    the common case skip the final carry scan entirely.
    """
    bound = max_count.bit_length()
    carry = diff
    for p in range(bound):
        if p == len(planes):
            if not carry.any():
                return
            plane = np.zeros(full_shape, dtype=np.uint64)
            plane[start:stop] = carry
            planes.append(plane)
            return
        seg = planes[p][start:stop]
        new_carry = seg & carry
        np.bitwise_xor(seg, carry, out=seg)
        carry = new_carry
        if p + 1 == bound:
            return  # counts here are <= max_count: carry is provably 0
        if not carry.any():
            return


def decode_planes(
    planes: Sequence[np.ndarray], n_lanes: int
) -> np.ndarray:
    """Dense per-(row, lane) counts from bit-sliced planes.

    Exactly :meth:`ToggleAccumulator.decode` (same integer counts, same
    ``uint8``-up-to-8-planes dtype rule), but all planes unpack in one
    stacked ``np.unpackbits`` call and combine via a weighted
    plane-axis contraction — one pass instead of an unpack + shift + add
    round-trip per plane, which profiling showed dominated the packed
    engine's decode.
    """
    if not planes:
        raise ValueError("cannot decode empty planes")
    n_planes = len(planes)
    dtype = np.uint8 if n_planes <= 8 else np.uint32
    # Planes beyond weight 4 are increasingly sparse (counts >= 8 need a
    # deep glitch train), so only the low planes go through the dense
    # contraction; high planes add their few nonzero rows individually.
    dense = min(n_planes, 3)
    stacked = np.asarray(planes[:dense])
    _, n_rows, n_words = stacked.shape
    bits = np.unpackbits(
        stacked.reshape(dense * n_rows, n_words).view(np.uint8),
        axis=1, bitorder="little",
    )[:, :n_lanes].reshape(dense, n_rows, n_lanes)
    weights = (1 << np.arange(dense, dtype=np.uint64)).astype(dtype)
    if dtype is not np.uint8:
        bits = bits.astype(dtype)
    # uint8 accumulation is exact: counts < 2**n_planes <= 256.
    counts = np.einsum("p,prl->rl", weights, bits)
    for p in range(dense, n_planes):
        plane = planes[p]
        rows = np.flatnonzero(plane.any(axis=1))
        if rows.size == 0:
            continue
        sub = np.unpackbits(
            plane[rows].view(np.uint8), axis=1, bitorder="little"
        )[:, :n_lanes]
        if dtype is not np.uint8:
            sub = sub.astype(dtype)
        counts[rows] += sub * dtype(1 << p)
    return counts


class BitwiseProgram:
    """A netlist lowered to a straight-line tape over packed words.

    Attributes:
        compiled: The source :class:`CompiledNetlist`.
        lut_fold: Whether multi-gate cones were folded into LUTs.
        ops: Settle instruction tape in ascending (level, class) order.
        relax_groups: Per-class windowed groups for unit-delay
            relaxation.
        n_rows: Rows of the program value matrix (== ``n_nets`` unless
            folding removed interior nets).
        n_inputs: Primary input count (rows ``2 .. 2 + n_inputs``).
        row_of_net: ``[n_nets]`` net → row map (``-1`` for folded-away
            interior nets; a permutation when ``lut_fold`` is off).
        net_of_row: ``[n_rows]`` row → net inverse map.
        row_caps: ``[n_rows]`` switched capacitance per row; folded
            interior caps are lumped onto their cone root's row.
        depth: Longest path in gate levels (bounds relaxation steps).
        n_folded_gates: Gates absorbed into LUT cones (0 without folding).
    """

    def __init__(
        self,
        compiled: CompiledNetlist,
        lut_fold: bool = False,
        lut_max_gates: int = DEFAULT_LUT_MAX_GATES,
    ):
        netlist = compiled.netlist
        with span(
            "program.compile", module=netlist.name, lut_fold=lut_fold
        ) as sp:
            self.compiled = compiled
            self.lut_fold = bool(lut_fold)
            self.depth = compiled.depth
            self.n_inputs = len(netlist.inputs)
            levels = compiled.levels

            if lut_fold:
                supergates = _fold_cones(netlist, levels, lut_max_gates)
            else:
                supergates = [
                    _SuperGate(g.output, [g], list(g.inputs))
                    for g in netlist.gates
                ]

            # --- per-class blocks, level-sorted inside each block ---
            blocks: Dict[str, List[_SuperGate]] = {}
            for sg in supergates:
                key = _LUT_BLOCK if len(sg.gates) > 1 else \
                    _canon_spec(sg.gates[0].type_name)[0]
                blocks.setdefault(key, []).append(sg)
            for members in blocks.values():
                members.sort(
                    key=lambda sg: (int(levels[sg.output]), sg.output)
                )

            # --- row assignment: consts, inputs, then the blocks ---
            gate_base = 2 + self.n_inputs
            n_rows = gate_base + len(supergates)
            row_of_net = np.full(netlist.n_nets, -1, dtype=np.intp)
            row_of_net[CONST0] = ROW_CONST0
            row_of_net[CONST1] = ROW_CONST1
            for j, net in enumerate(netlist.inputs):
                row_of_net[net] = 2 + j
            net_of_row = np.empty(n_rows, dtype=np.intp)
            net_of_row[ROW_CONST0] = CONST0
            net_of_row[ROW_CONST1] = CONST1
            net_of_row[2:gate_base] = netlist.inputs
            next_row = gate_base
            block_rows: Dict[str, Tuple[int, int]] = {}
            for name in sorted(blocks):
                start = next_row
                for sg in blocks[name]:
                    row_of_net[sg.output] = next_row
                    net_of_row[next_row] = sg.output
                    next_row += 1
                block_rows[name] = (start, next_row)
            self.n_rows = n_rows
            self.row_of_net = row_of_net
            self.net_of_row = net_of_row

            # --- relax groups + settle tape per block ---
            # Operands resolve through row_of_net: every operand is a
            # constant, an input, or another supergate's output — never a
            # folded interior (those have fanout 1 inside their own cone).
            self.relax_groups: List[RelaxGroup] = []
            self.ops: List[Instruction] = []
            for name in sorted(blocks):
                members = blocks[name]
                base, _ = block_rows[name]
                block_levels = np.array(
                    [int(levels[sg.output]) for sg in members],
                    dtype=np.intp,
                )
                if name == _LUT_BLOCK:
                    masks = _minterm_masks(
                        [_cone_table(sg) for sg in members]
                    )
                    inv = None
                    out_mask = None
                    pins = [
                        list(sg.inputs)
                        + [CONST0] * (LUT_MAX_INPUTS - len(sg.inputs))
                        for sg in members
                    ]
                    kind, disp = "lut", "LUT"
                else:
                    masks = None
                    specs = [
                        _canon_spec(sg.gates[0].type_name)
                        for sg in members
                    ]
                    pins = [
                        list(sg.gates[0].inputs)
                        + [spec[1]] * (3 - len(sg.gates[0].inputs))
                        for sg, spec in zip(members, specs)
                    ]
                    inv, _ = _inv_masks(np.array(
                        [spec[2] for spec in specs], dtype=bool
                    ))
                    out_bits = np.array(
                        [spec[3] for spec in specs], dtype=bool
                    )
                    out_mask = None if not out_bits.any() else np.where(
                        out_bits, _ALL_ONES, np.uint64(0)
                    ).reshape(-1, 1)
                    kind, disp = "op", name
                in_rows = row_of_net[np.array(pins, dtype=np.intp).T]
                if in_rows.size and in_rows.min() < 0:
                    raise AssertionError(
                        "operand resolves to a folded-away row"
                    )
                level_first = [
                    int(v) for v in np.searchsorted(
                        block_levels, np.arange(self.depth + 2)
                    )
                ]
                self.relax_groups.append(RelaxGroup(
                    kind=kind, name=disp, inv=inv, out_mask=out_mask,
                    masks=masks, in_rows=in_rows, base=base,
                    size=len(members), level_first=level_first,
                ))
                # Consecutive equal-level runs become tape instructions
                # (contiguous row slices because the block is
                # level-sorted).
                i = 0
                while i < len(members):
                    j = i
                    while (
                        j < len(members)
                        and block_levels[j] == block_levels[i]
                    ):
                        j += 1
                    self.ops.append(Instruction(
                        level=int(block_levels[i]), kind=kind, name=disp,
                        inv=(None, None, None) if inv is None else tuple(
                            m if m is None else m[i:j] for m in inv
                        ),
                        out_mask=None if out_mask is None
                        else out_mask[i:j],
                        masks=None if masks is None else [
                            m if m is None else m[i:j] for m in masks
                        ],
                        in_rows=in_rows[:, i:j],
                        start=base + i, stop=base + j,
                        n_gates=sum(len(sg.gates) for sg in members[i:j]),
                    ))
                    i = j
            # Ascending level; every operand is written by an earlier
            # instruction (strictly lower level) or is a const/input row.
            self.ops.sort(key=lambda op: (op.level, op.name))

            # --- per-row capacitance (folded interiors lump onto root) ---
            caps = compiled.net_caps
            row_caps = caps[net_of_row].copy()
            self.n_folded_gates = 0
            for sg in supergates:
                if len(sg.gates) > 1:
                    self.n_folded_gates += len(sg.gates) - 1
                    for gate in sg.gates[:-1]:
                        row_caps[row_of_net[sg.output]] += caps[gate.output]
            self.row_caps = row_caps

            n_lut = sum(1 for op in self.ops if op.kind == "lut")
            sp.set(
                instructions=len(self.ops), lut_instructions=n_lut,
                rows=self.n_rows, relax_groups=len(self.relax_groups),
                folded_gates=self.n_folded_gates,
            )
        EVENTS.program_compiles.inc()
        EVENTS.program_instructions.inc(len(self.ops) - n_lut, kind="op")
        if n_lut:
            EVENTS.program_instructions.inc(n_lut, kind="lut")

    # ------------------------------------------------------------------
    @property
    def n_instructions(self) -> int:
        return len(self.ops)

    @property
    def max_planes(self) -> int:
        """Toggle-plane count that provably suffices for one relaxation.

        A row toggles at most once per step plus once at the input
        application, so counts stay ``<= depth + 1``.
        """
        return max(1, (self.depth + 1).bit_length())

    def describe(self) -> Dict[str, int]:
        """Compact structural summary (for spans, benchmarks, tests)."""
        return {
            "instructions": len(self.ops),
            "lut_instructions": sum(
                1 for op in self.ops if op.kind == "lut"
            ),
            "relax_groups": len(self.relax_groups),
            "rows": self.n_rows,
            "folded_gates": self.n_folded_gates,
            "depth": self.depth,
        }

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def settle(self, packed_inputs: np.ndarray, n_words: int) -> np.ndarray:
        """Zero-delay settle: one ascending pass over the tape.

        Args:
            packed_inputs: ``[n_inputs, n_words]`` packed input words.
            n_words: Word count of the lane layout.

        Returns:
            ``[n_rows, n_words]`` settled program-ordered value matrix.
        """
        values = np.zeros((self.n_rows, n_words), dtype=np.uint64)
        values[ROW_CONST1] = _ALL_ONES
        values[2:2 + self.n_inputs] = packed_inputs
        for op in self.ops:
            values[op.start:op.stop] = op.evaluate(values)
        return values

    def relax(
        self,
        settled: np.ndarray,
        new_inputs: np.ndarray,
        max_steps: Optional[int] = None,
        count_inputs: bool = True,
        native: Optional[bool] = None,
        planes_buffer: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, ToggleAccumulator, int]:
        """Unit-delay relaxation after an input transition.

        Windowed-synchronous: step ``t`` stages the evaluation of each
        class block's level-``>= t`` suffix against the step ``t - 1``
        snapshot, then applies all writes — identical dynamics to the
        other engines over the gates that can still change, so toggle
        counts are bit-identical when ``lut_fold`` is off.  Terminates at
        the first unchanged step (at most ``depth`` steps on any acyclic
        network).

        Args:
            settled: ``[n_rows, n_words]`` settled values (not mutated).
            new_inputs: ``[n_inputs, n_words]`` packed new input words.
            max_steps: Safety bound kept for API parity with the other
                engines; the window makes more than ``depth`` steps
                structurally impossible.
            count_inputs: Count the input application itself as toggles.
            native: ``None`` (default) uses the optional C kernel of
                :mod:`repro.circuit.native` when it is available and the
                program has no LUT groups, falling back to the numpy
                loop otherwise; ``False`` forces the numpy loop;
                ``True`` demands the native kernel (``RuntimeError``
                when unavailable).  Both paths are all-integer and
                produce bit-identical results.
            planes_buffer: Optional caller-owned ``[max_planes, n_rows,
                n_words]`` ``uint64`` buffer the native path re-zeroes
                and fills instead of allocating (the returned
                accumulator's planes are then views into it, valid until
                the caller's next reuse).  Ignored on the numpy path or
                on a shape mismatch.

        Returns:
            ``(final_values, accumulator, steps)`` — the accumulator's
            planes are program-row-ordered; permute with
            :attr:`row_of_net` and decode (:func:`decode_planes`) for
            net-ordered counts.
        """
        if max_steps is None:
            max_steps = 4 * self.depth + 8
        if settled.shape[0] != self.n_rows:
            raise ValueError(
                f"settled must have {self.n_rows} rows, got {settled.shape}"
            )
        full_shape = settled.shape
        n_words = settled.shape[1]
        values = settled.copy()

        in_stop = 2 + self.n_inputs
        diff_in = values[2:in_stop] ^ new_inputs
        if not diff_in.any():
            # Unchanged inputs: the settled state is already the unique
            # fixpoint, nothing can toggle.
            return values, ToggleAccumulator(), 0

        tables = None
        if native is not False and max_steps >= self.depth:
            tables = native_tables(self)
            if native is True and tables is None:
                raise RuntimeError(
                    f"native relax kernel unavailable: {native_status()}"
                )
        if tables is not None:
            # One zeroed [MAXP, R, W] buffer instead of grow-on-demand
            # planes: a row's toggle count is bounded by depth + 1 (one
            # toggle per step plus the input application), so
            # bit_length(depth + 1) planes always suffice.
            shape = (self.max_planes,) + full_shape
            if planes_buffer is not None and planes_buffer.shape == shape:
                planes_buf = planes_buffer
                planes_buf.fill(0)
            else:
                planes_buf = np.zeros(shape, np.uint64)
            n_planes = 0
            if count_inputs:
                planes_buf[0, 2:in_stop] = diff_in
                n_planes = 1
            values[2:in_stop] = new_inputs
            steps, evals, n_used = relax_native(
                tables, values, np.empty_like(values), planes_buf,
                n_planes,
            )
            EVENTS.program_steps.inc(steps)
            EVENTS.program_evals.inc(evals)
            accumulator = ToggleAccumulator()
            accumulator.planes = [planes_buf[p] for p in range(n_used)]
            return values, accumulator, steps

        planes: List[np.ndarray] = []
        if count_inputs:
            _fold_slice(planes, full_shape, 2, in_stop, diff_in, 1)
        values[2:in_stop] = new_inputs

        groups = self.relax_groups
        steps = 0
        evals = 0
        for t in range(1, self.depth + 1):
            if t > max_steps:
                raise RuntimeError(
                    f"unit-delay relaxation of "
                    f"{self.compiled.netlist.name} did not settle within "
                    f"{max_steps} steps"
                )
            # Stage all reads (and diffs) against the step t-1
            # snapshot...
            staged = []
            for group in groups:
                k = group.level_first[t]
                if k >= group.size:
                    continue
                evals += 1
                diff = group.eval_diff(values, k, n_words)
                if diff is not None:
                    staged.append((group, k, diff))
            # ...then apply all writes at once (synchronous step).
            if not staged:
                break
            for group, k, diff in staged:
                s = group.base + k
                e = group.base + group.size
                _fold_slice(planes, full_shape, s, e, diff, t)
                np.bitwise_xor(values[s:e], diff, out=values[s:e])
            steps = t
        EVENTS.program_steps.inc(steps)
        EVENTS.program_evals.inc(evals)
        accumulator = ToggleAccumulator()
        accumulator.planes = planes
        return values, accumulator, steps

    # ------------------------------------------------------------------
    def evaluate_outputs(self, input_bits: np.ndarray) -> np.ndarray:
        """``[n_patterns, n_outputs]`` output bits (functional check).

        Works for folded programs too — folding is exact for settled
        values, only glitch timing is approximated.
        """
        input_bits = np.asarray(input_bits, dtype=bool)
        if input_bits.ndim != 2 or input_bits.shape[1] != self.n_inputs:
            raise ValueError(
                f"input_bits must be [n_patterns, {self.n_inputs}], "
                f"got {input_bits.shape}"
            )
        n_lanes = input_bits.shape[0]
        n_words = n_words_for(max(n_lanes, 1))
        values = self.settle(pack_lanes(input_bits.T, n_words), n_words)
        output_rows = self.row_of_net[
            np.asarray(self.compiled.netlist.outputs, dtype=np.intp)
        ]
        return unpack_lanes(values[output_rows], n_lanes).T.astype(bool)


def compile_program(
    compiled: CompiledNetlist,
    lut_fold: bool = False,
    lut_max_gates: int = DEFAULT_LUT_MAX_GATES,
) -> BitwiseProgram:
    """Compile (and memoize) the bitwise program for a netlist.

    Programs are cached on the :class:`CompiledNetlist` instance, keyed
    by the folding configuration, so repeated chunked simulation pays
    compilation once.
    """
    cache = compiled.__dict__.setdefault("_programs", {})
    key = (bool(lut_fold), int(lut_max_gates))
    program = cache.get(key)
    if program is None:
        program = BitwiseProgram(
            compiled, lut_fold=lut_fold, lut_max_gates=lut_max_gates
        )
        cache[key] = program
    return program
