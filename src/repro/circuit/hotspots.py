"""Per-net power breakdown ("hotspot") reporting.

The macro-model abstracts a module to one number per event class; when a
module's power surprises, designers drop one level down and ask *which
nets* burn the charge.  :func:`net_power_breakdown` re-runs the reference
simulation while accumulating per-net charge, and
:func:`render_hotspots` prints the ranked report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .compiled import CompiledNetlist
from .netlist import Netlist
from .packed import (
    PACKED_AVAILABLE,
    n_words_for,
    pack_lanes,
    packed_functional_values,
    packed_unit_delay_transition,
)
from .program import compile_program
from .simulate import functional_values, unit_delay_transition


@dataclass(frozen=True)
class NetHotspot:
    """Charge attribution for one net."""

    net: int
    name: str
    charge: float
    toggles: int
    share: float  # fraction of total module charge


def net_power_breakdown(
    netlist: Netlist | CompiledNetlist,
    input_bits: np.ndarray,
    top: Optional[int] = None,
    chunk_size: int = 2048,
    engine: str = "auto",
) -> List[NetHotspot]:
    """Per-net charge over a stimulus stream, ranked descending.

    Args:
        netlist: Module netlist (raw or compiled).
        input_bits: ``[n, m]`` input vector stream.
        top: Keep only the ``top`` hottest nets (all when None).
        chunk_size: Vectorization batch size.
        engine: ``"bool"``, ``"packed"``, ``"compiled"`` or ``"auto"``.
            The report only needs per-net *totals*, so the packed and
            compiled engines never decode dense counts: each toggle
            bit-plane collapses straight through ``popcount``
            (:meth:`ToggleAccumulator.per_row_totals`; the compiled
            engine's program-order totals are permuted back to net
            order through ``row_of_net``).

    Returns:
        :class:`NetHotspot` list sorted by charge, highest first.
    """
    compiled = (
        netlist if isinstance(netlist, CompiledNetlist)
        else CompiledNetlist(netlist)
    )
    input_bits = np.asarray(input_bits, dtype=bool)
    n_cycles = input_bits.shape[0] - 1
    if n_cycles < 1:
        raise ValueError("need at least 2 patterns")
    if engine not in ("auto", "bool", "packed", "compiled"):
        raise ValueError(f"unknown engine {engine!r}")
    if engine == "auto":
        engine = "packed" if PACKED_AVAILABLE and n_cycles >= 64 else "bool"
    if engine in ("packed", "compiled") and not PACKED_AVAILABLE:
        raise ValueError(f"engine={engine!r} needs a little-endian host")
    program = compile_program(compiled) if engine == "compiled" else None
    toggles_total = np.zeros(compiled.n_nets, dtype=np.int64)
    for start in range(0, n_cycles, chunk_size):
        stop = min(start + chunk_size, n_cycles)
        if engine == "compiled":
            n_lanes = stop - start
            n_words = n_words_for(n_lanes)
            old_packed = pack_lanes(input_bits[start:stop].T, n_words)
            new_packed = pack_lanes(
                input_bits[start + 1 : stop + 1].T, n_words
            )
            settled = program.settle(old_packed, n_words)
            _, accumulator, _ = program.relax(settled, new_packed)
            row_totals = accumulator.per_row_totals(program.n_rows)
            toggles_total += row_totals[program.row_of_net]
            continue
        if engine == "packed":
            n_lanes = stop - start
            n_words = n_words_for(n_lanes)
            old_packed = pack_lanes(input_bits[start:stop].T, n_words)
            new_packed = pack_lanes(
                input_bits[start + 1 : stop + 1].T, n_words
            )
            settled = packed_functional_values(compiled, old_packed, n_words)
            _, accumulator = packed_unit_delay_transition(
                compiled, settled, new_packed
            )
            toggles_total += accumulator.per_row_totals(compiled.n_nets)
            continue
        settled = functional_values(compiled, input_bits[start:stop])
        _, toggles = unit_delay_transition(
            compiled, settled, input_bits[start + 1 : stop + 1]
        )
        toggles_total += toggles.sum(axis=1, dtype=np.int64)
    charge = toggles_total * compiled.net_caps
    total = float(charge.sum()) or 1.0
    order = np.argsort(charge)[::-1]
    if top is not None:
        order = order[:top]
    names = compiled.netlist.net_names
    return [
        NetHotspot(
            net=int(net),
            name=names.get(int(net), f"n{int(net)}"),
            charge=float(charge[net]),
            toggles=int(toggles_total[net]),
            share=float(charge[net]) / total,
        )
        for net in order
        if charge[net] > 0 or top is None
    ]


def render_hotspots(
    hotspots: Sequence[NetHotspot], title: str = "net power breakdown"
) -> str:
    """ASCII table of a hotspot report."""
    lines = [title]
    lines.append(f"  {'net':>6s} {'name':20s} {'charge':>12s} "
                 f"{'toggles':>9s} {'share':>7s}")
    for h in hotspots:
        lines.append(
            f"  {h.net:6d} {h.name[:20]:20s} {h.charge:12.1f} "
            f"{h.toggles:9d} {h.share * 100:6.2f}%"
        )
    return "\n".join(lines)
