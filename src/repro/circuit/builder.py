"""Ergonomic construction of gate netlists.

:class:`NetlistBuilder` wraps the raw :class:`~repro.circuit.netlist.Netlist`
data model with net allocation, gate emission helpers and the handful of
composite cells (half adder, full adder) every datapath generator needs.
Constant inputs are folded at build time so generators can wire ``CONST0`` /
``CONST1`` freely without leaving dead logic behind.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .netlist import CONST0, CONST1, Gate, Netlist
from .technology import gate_type


class NetlistBuilder:
    """Incrementally builds a validated :class:`Netlist`.

    Example:
        >>> b = NetlistBuilder("toy")
        >>> a, c = b.add_inputs(2)
        >>> y = b.gate("XOR2", a, c)
        >>> netlist = b.build(outputs=[y])
        >>> netlist.n_gates
        1
    """

    def __init__(self, name: str):
        self.name = name
        self._n_nets = 2  # CONST0, CONST1
        self._inputs: List[int] = []
        self._gates: List[Gate] = []
        self._net_names: Dict[int, str] = {CONST0: "const0", CONST1: "const1"}
        self._inputs_frozen = False

    # ------------------------------------------------------------------
    # Nets and primary inputs
    # ------------------------------------------------------------------
    def new_net(self, name: Optional[str] = None) -> int:
        """Allocate a fresh internal net id."""
        net = self._n_nets
        self._n_nets += 1
        if name:
            self._net_names[net] = name
        return net

    def add_input(self, name: Optional[str] = None) -> int:
        """Declare one primary-input net."""
        if self._inputs_frozen:
            raise ValueError("inputs must be declared before any gate")
        net = self.new_net(name)
        self._inputs.append(net)
        return net

    def add_inputs(self, count: int, prefix: str = "in") -> List[int]:
        """Declare ``count`` primary inputs named ``prefix[i]``."""
        return [self.add_input(f"{prefix}[{i}]") for i in range(count)]

    # ------------------------------------------------------------------
    # Gate emission with constant folding
    # ------------------------------------------------------------------
    def gate(self, type_name: str, *inputs: int, name: Optional[str] = None) -> int:
        """Emit a gate; returns the output net.

        Constant inputs are folded: e.g. ``AND2(x, CONST0)`` returns
        ``CONST0`` without emitting a gate, ``XOR2(x, CONST1)`` becomes an
        inverter.  Folding keeps generated arithmetic arrays (Baugh-Wooley
        rows, Booth correction bits) free of degenerate logic.
        """
        self._inputs_frozen = True
        gtype = gate_type(type_name)
        if len(inputs) != gtype.n_inputs:
            raise ValueError(
                f"{type_name} takes {gtype.n_inputs} inputs, got {len(inputs)}"
            )
        folded = self._fold(type_name, tuple(inputs))
        if folded is not None:
            return folded
        out = self.new_net(name)
        self._gates.append(Gate(type_name, tuple(inputs), out))
        return out

    def _fold(self, type_name: str, ins: Tuple[int, ...]) -> Optional[int]:
        """Return a pre-existing net equivalent to the gate, or None."""
        consts = {CONST0: False, CONST1: True}

        def known(net: int) -> Optional[bool]:
            return consts.get(net)

        k = [known(n) for n in ins]
        if type_name == "INV":
            if k[0] is not None:
                return CONST0 if k[0] else CONST1
        elif type_name == "BUF":
            if k[0] is not None:
                return ins[0]
        elif type_name in ("AND2", "AND3"):
            if any(v is False for v in k):
                return CONST0
            live = [n for n, v in zip(ins, k) if v is not True]
            if not live:
                return CONST1
            if len(live) == 1:
                return live[0]
            if len(live) == 2 and type_name == "AND3":
                return self.gate("AND2", *live)
        elif type_name in ("OR2", "OR3"):
            if any(v is True for v in k):
                return CONST1
            live = [n for n, v in zip(ins, k) if v is not False]
            if not live:
                return CONST0
            if len(live) == 1:
                return live[0]
            if len(live) == 2 and type_name == "OR3":
                return self.gate("OR2", *live)
        elif type_name == "NAND2":
            if any(v is False for v in k):
                return CONST1
            if k[0] is True and k[1] is True:
                return CONST0
            if k[0] is True:
                return self.gate("INV", ins[1])
            if k[1] is True:
                return self.gate("INV", ins[0])
        elif type_name == "NOR2":
            if any(v is True for v in k):
                return CONST0
            if k[0] is False and k[1] is False:
                return CONST1
            if k[0] is False:
                return self.gate("INV", ins[1])
            if k[1] is False:
                return self.gate("INV", ins[0])
        elif type_name in ("XOR2", "XOR3"):
            live = [n for n, v in zip(ins, k) if v is None]
            if type_name == "XOR2" and len(live) == 2:
                return None  # nothing to fold
            parity = sum(1 for v in k if v is True) % 2
            if not live:
                return CONST1 if parity else CONST0
            if len(live) == 1:
                return self.gate("INV", live[0]) if parity else live[0]
            if len(live) == 2:
                out = self.gate("XOR2", *live)
                return self.gate("INV", out) if parity else out
        elif type_name == "XNOR2":
            if k[0] is not None or k[1] is not None:
                inner = self.gate("XOR2", *ins)
                return self.gate("INV", inner)
        elif type_name == "MAJ3":
            trues = sum(1 for v in k if v is True)
            falses = sum(1 for v in k if v is False)
            live = [n for n, v in zip(ins, k) if v is None]
            if trues >= 2:
                return CONST1
            if falses >= 2:
                return CONST0
            if trues == 1 and falses == 1:
                return live[0]
            if trues == 1:
                return self.gate("OR2", *live)
            if falses == 1:
                return self.gate("AND2", *live)
        elif type_name == "MUX2":
            sel, a, b = ins
            if known(sel) is False:
                return a
            if known(sel) is True:
                return b
            if a == b:
                return a
            if known(a) is not None or known(b) is not None:
                ka, kb = known(a), known(b)
                if ka is False and kb is True:
                    return sel
                if ka is True and kb is False:
                    return self.gate("INV", sel)
                if ka is False:
                    return self.gate("AND2", sel, b)
                if ka is True:
                    return self.gate("OR2", b, self.gate("INV", sel))
                if kb is False:
                    return self.gate("AND2", a, self.gate("INV", sel))
                if kb is True:
                    return self.gate("OR2", a, sel)
        elif type_name == "AOI21":
            a, b, c = ins
            if known(c) is True:
                return CONST0
            if known(a) is False or known(b) is False:
                inner_c = c
                return self.gate("INV", inner_c) if known(c) is None else CONST1
            if known(c) is False:
                return self.gate("NAND2", a, b)
            if known(a) is True:
                return self.gate("NOR2", b, c)
            if known(b) is True:
                return self.gate("NOR2", a, c)
        elif type_name == "OAI21":
            a, b, c = ins
            if known(c) is False:
                return CONST1
            if known(a) is True or known(b) is True:
                return self.gate("INV", c) if known(c) is None else CONST0
            if known(c) is True:
                return self.gate("NOR2", a, b)
            if known(a) is False:
                return self.gate("NAND2", b, c)
            if known(b) is False:
                return self.gate("NAND2", a, c)
        elif type_name in ("NAND3", "NOR3"):
            if any(v is not None for v in k):
                base = "AND3" if type_name == "NAND3" else "OR3"
                return self.gate("INV", self.gate(base, *ins))
        return None

    # ------------------------------------------------------------------
    # Composite cells
    # ------------------------------------------------------------------
    def half_adder(self, a: int, b: int) -> Tuple[int, int]:
        """Return ``(sum, carry)`` of a half adder."""
        return self.gate("XOR2", a, b), self.gate("AND2", a, b)

    def full_adder(self, a: int, b: int, cin: int) -> Tuple[int, int]:
        """Return ``(sum, carry)`` of a full adder (XOR/XOR + MAJ3)."""
        s = self.gate("XOR3", a, b, cin)
        cout = self.gate("MAJ3", a, b, cin)
        return s, cout

    def invert_bus(self, bits: Sequence[int]) -> List[int]:
        """Invert every bit of a bus."""
        return [self.gate("INV", b) for b in bits]

    def buffer(self, net: int) -> int:
        """Emit an explicit buffer (used to legalize const outputs)."""
        if net in (CONST0, CONST1):
            # A buffered constant never toggles, so it costs nothing
            # dynamically; it only legalizes the single-driver invariant.
            return self._const_buf(net)
        return self.gate("BUF", net)

    def _const_buf(self, net: int) -> int:
        out = self.new_net()
        self._gates.append(Gate("BUF", (net,), out))
        return out

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------
    def build(self, outputs: Sequence[int], validate: bool = True) -> Netlist:
        """Finalize the netlist with the given primary outputs.

        Output nets that are constants or aliases of primary inputs are
        legalized with a buffer so that ``validate`` invariants hold for
        every generated module.
        """
        legal_outputs: List[int] = []
        for net in outputs:
            if net in (CONST0, CONST1):
                legal_outputs.append(self._const_buf(net))
            else:
                legal_outputs.append(net)
        netlist = Netlist(
            name=self.name,
            n_nets=self._n_nets,
            inputs=list(self._inputs),
            outputs=legal_outputs,
            gates=list(self._gates),
            net_names=dict(self._net_names),
        )
        netlist = _prune_dangling(netlist)
        if validate:
            netlist.validate()
        return netlist


def _prune_dangling(netlist: Netlist) -> Netlist:
    """Drop gates whose outputs reach no primary output (dead logic).

    Constant folding can orphan intermediate nets; dangling nets would both
    fail validation and distort power accounting, so they are removed and the
    netlist is renumbered densely.
    """
    driver = {g.output: g for g in netlist.gates}
    live = set(netlist.outputs) | {CONST0, CONST1} | set(netlist.inputs)
    stack = [n for n in netlist.outputs]
    while stack:
        net = stack.pop()
        gate = driver.get(net)
        if gate is None:
            continue
        for src in gate.inputs:
            if src not in live:
                live.add(src)
                stack.append(src)

    keep_gates = [g for g in netlist.gates if g.output in live]
    # Renumber: constants keep 0/1, inputs keep their slots (all inputs stay,
    # even unused ones — a module port exists regardless of internal use).
    old_to_new: Dict[int, int] = {CONST0: CONST0, CONST1: CONST1}
    next_id = 2
    for net in netlist.inputs:
        old_to_new[net] = next_id
        next_id += 1
    for gate in keep_gates:
        if gate.output not in old_to_new:
            old_to_new[gate.output] = next_id
            next_id += 1

    def remap(net: int) -> int:
        return old_to_new[net]

    new_gates = [
        Gate(g.type_name, tuple(remap(i) for i in g.inputs), remap(g.output))
        for g in keep_gates
    ]
    return Netlist(
        name=netlist.name,
        n_nets=next_id,
        inputs=[remap(n) for n in netlist.inputs],
        outputs=[remap(n) for n in netlist.outputs],
        gates=new_gates,
        net_names={
            remap(n): name
            for n, name in netlist.net_names.items()
            if n in old_to_new
        },
    )
