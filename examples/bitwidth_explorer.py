"""Scenario: explore power vs operand width without re-characterizing.

Section 5 of the paper: a module family's Hd coefficients follow its
structural complexity, so a *small prototype set* parameterizes the model
over the whole width range.  This example characterizes csa-multiplier
prototypes at widths {4, 10, 16} (the paper's THI set) and then predicts
power for every even width 4..16 under a speech workload — validating the
predictions against direct characterization + simulation.

A designer can use this to pick the cheapest word length meeting an
accuracy budget, without running gate-level power simulations per width.

Run:  python examples/bitwidth_explorer.py
"""

from repro.circuit import PowerSimulator
from repro.core import (
    PowerEstimator,
    characterize_prototype_set,
    fit_width_regression,
)
from repro.modules import make_module
from repro.signals import make_operand_streams, module_stimulus


def main() -> None:
    kind = "csa_multiplier"
    prototype_set = (4, 10, 16)  # the paper's sparsest (THI) set
    print(f"characterizing prototypes {prototype_set} of {kind} ...")
    prototypes = characterize_prototype_set(
        kind, prototype_set, n_patterns=4000, seed=3
    )
    regression = fit_width_regression(kind, prototypes)
    for i, name in zip((1, 4, 8), regression.prototype_widths):
        pass  # regression rows are indexed by Hd class, printed below
    print("regression vectors R_i (features m^2, m, 1):")
    for i in (1, 4, 8):
        row = regression.rows[i]
        print(f"  R_{i} = [{row[0]:8.3f} {row[1]:8.3f} {row[2]:8.3f}]")

    print(f"\n{'width':>5s} {'predicted':>10s} {'measured':>10s} {'err':>7s}")
    for width in (4, 6, 8, 10, 12, 14, 16):
        module = make_module(kind, width)
        model = regression.predict_model(width, module.input_bits)
        streams = make_operand_streams(module, "III", n=3000, seed=21)
        bits = module_stimulus(module, streams)
        predicted = PowerEstimator(model).estimate_from_bits(bits)
        measured = PowerSimulator(module.compiled).simulate(bits)
        err = (predicted.average_charge / measured.average_charge - 1) * 100
        marker = "  (prototype)" if width in prototype_set else ""
        print(f"{width:5d} {predicted.average_charge:10.1f} "
              f"{measured.average_charge:10.1f} {err:+6.1f}%{marker}")

    print("\nonly three gate-level characterizations were needed to cover "
          "the whole width range — the Section 5 result.")


if __name__ == "__main__":
    main()
