"""Scenario: compare a multiplier's power across DSP input classes.

The intro of the paper motivates high-level power analysis for DSP
datapaths: the same multiplier consumes very different power depending on
the data statistics feeding it.  This example quantifies that for an 8x8
Booth-Wallace multiplier across the paper's five stimulus classes, and
shows that the Hd macro-model tracks the trend at a fraction of the
simulation cost.

Run:  python examples/audio_codec_power.py
"""

import time

from repro.circuit import PowerSimulator
from repro.core import PowerEstimator, characterize_module
from repro.modules import make_module
from repro.signals import (
    DATA_TYPE_DESCRIPTIONS,
    DATA_TYPES,
    make_operand_streams,
    module_stimulus,
)


def main() -> None:
    module = make_module("booth_wallace_multiplier", 8)
    print(f"module: {module.netlist.name} ({module.netlist.n_gates} gates)")
    result = characterize_module(module, n_patterns=5000, seed=7)
    estimator = PowerEstimator(result.model)
    simulator = PowerSimulator(module.compiled)

    print(f"\n{'type':4s} {'description':45s} "
          f"{'simulated':>10s} {'Hd model':>10s} {'error':>8s}")
    sim_time = model_time = 0.0
    for data_type in DATA_TYPES:
        streams = make_operand_streams(module, data_type, n=5000, seed=11)
        bits = module_stimulus(module, streams)

        t0 = time.perf_counter()
        reference = simulator.simulate(bits).average_charge
        sim_time += time.perf_counter() - t0

        t0 = time.perf_counter()
        estimate = estimator.estimate_from_bits(bits).average_charge
        model_time += time.perf_counter() - t0

        err = (estimate / reference - 1) * 100
        print(f"{data_type:4s} {DATA_TYPE_DESCRIPTIONS[data_type]:45s} "
              f"{reference:10.1f} {estimate:10.1f} {err:+7.1f}%")

    print(f"\nsimulation time: {sim_time:.2f}s, model time: "
          f"{model_time:.3f}s  (speedup x{sim_time / model_time:.0f})")
    print("note the correlated streams (III/IV) and especially the counter "
          "(V) consume far less than random data — exactly the trend an "
          "architect exploits when choosing data encodings.")


if __name__ == "__main__":
    main()
