"""Scenario: glitch hotspots and the pipelining trade-off.

Two levels of diagnosis the library provides below the macro-model:

1. **Hotspot analysis** — which nets burn the charge in a multiplier
   (the merge-adder carry chain, fed by array glitches);
2. **Pipelining** — a register rank between the carry-save array and the
   merge adder blocks those glitches; this script measures the saving and
   re-derives per-stage Hd models, showing the macro-model methodology
   composes across pipeline stages.

Run:  python examples/pipeline_explorer.py
"""

import numpy as np

from repro.circuit import PowerSimulator, net_power_breakdown, render_hotspots
from repro.circuit.sequential import (
    PipelinedCircuit,
    split_multiplier_pipeline,
)
from repro.core import HdPowerModel, classify_transitions
from repro.modules import make_module

WIDTH = 8
N = 4000


def main() -> None:
    flat = make_module("csa_multiplier", WIDTH)
    rng = np.random.default_rng(7)
    bits = flat.pack_inputs(
        rng.integers(0, 1 << WIDTH, N), rng.integers(0, 1 << WIDTH, N)
    )

    # 1. Where does the charge go?
    print(render_hotspots(
        net_power_breakdown(flat.compiled, bits[:1000], top=8),
        title=f"hottest nets of the flat {WIDTH}x{WIDTH} csa multiplier",
    ))

    # 2. Pipeline it.
    stage1, stage2 = split_multiplier_pipeline(WIDTH)
    pipe = PipelinedCircuit([stage1, stage2])
    flat_avg = PowerSimulator(flat.compiled).simulate(bits).average_charge
    trace = pipe.simulate(bits)
    print(f"\nflat multiplier        : {flat_avg:9.1f} charge/op")
    print(f"pipelined, stage 1     : {trace.stage_charge[0].mean():9.1f}")
    print(f"pipelined, stage 2     : {trace.stage_charge[1].mean():9.1f}")
    print(f"pipeline registers     : {trace.register_charge[0].mean():9.1f}")
    print(f"pipelined total        : {trace.total_average:9.1f} "
          f"({(1 - trace.total_average / flat_avg) * 100:.1f}% saved)")

    # 3. The macro-model per stage: each stage is just another
    #    combinational module.
    streams = pipe.stage_input_streams(bits)
    print("\nper-stage Hd models:")
    for compiled, stream, charge in zip(pipe.stages, streams,
                                        trace.stage_charge):
        events = classify_transitions(stream)
        model = HdPowerModel.fit(
            events.hd, charge, stream.shape[1],
            name=compiled.netlist.name,
        )
        print(f"  {model.name}: m={model.width}, "
              f"eps={model.total_average_deviation * 100:.1f}%, "
              f"p_mid={model.coefficients[model.width // 2]:.1f}")


if __name__ == "__main__":
    main()
