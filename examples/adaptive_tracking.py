"""Scenario: online coefficient adaptation under statistics drift.

Section 4.2 of the paper: when the input statistics drift far from the
characterization statistics (the binary-counter stream being the extreme
case), it proposes "coefficient adaptation techniques [4]".  This example
runs the normalized-LMS adaptive model: a csa-multiplier characterized on
random data is exposed to a counter workload with sparse reference
observations (as if a low-level simulation were sampled every K cycles),
and the adapted model's error collapses while the static model stays
biased.

Run:  python examples/adaptive_tracking.py
"""

import numpy as np

from repro.circuit import PowerSimulator
from repro.core import (
    AdaptiveHdModel,
    characterize_module,
    classify_transitions,
)
from repro.modules import make_module
from repro.signals import make_operand_streams, module_stimulus

OBSERVE_EVERY = 10  # one reference observation per 10 cycles


def main() -> None:
    module = make_module("csa_multiplier", 8)
    print("characterizing on random patterns ...")
    result = characterize_module(module, n_patterns=5000, seed=1)

    streams = make_operand_streams(module, "V", n=6000, seed=2)
    bits = module_stimulus(module, streams)
    reference = PowerSimulator(module.compiled).simulate(bits)
    events = classify_transitions(bits)

    adaptive = AdaptiveHdModel(result.model, learning_rate=0.05)
    static_est = result.model.predict_cycle(events.hd)

    n = events.n_cycles
    window = 500
    print(f"\ncounter workload, observing the reference every "
          f"{OBSERVE_EVERY} cycles")
    print(f"{'cycles':>8s} {'static err':>11s} {'adaptive err':>13s} "
          f"{'coeff drift':>12s}")
    for start in range(0, n - window + 1, window):
        stop = start + window
        # Sparse observations inside this window drive the adaptation.
        for j in range(start, stop, OBSERVE_EVERY):
            adaptive.observe(int(events.hd[j]), float(reference.charge[j]))
        adaptive_est = adaptive.predict_cycle(events.hd[start:stop])
        ref = reference.charge[start:stop]
        static_err = (static_est[start:stop].sum() / ref.sum() - 1) * 100
        adaptive_err = (adaptive_est.sum() / ref.sum() - 1) * 100
        print(f"{stop:8d} {static_err:+10.1f}% {adaptive_err:+12.1f}% "
              f"{adaptive.drift() * 100:11.1f}%")

    print("\nthe static model keeps its characterization-time bias; the "
          "adaptive model re-centers the active coefficient classes within "
          "a few hundred observations (ref [4]'s behaviour).")


if __name__ == "__main__":
    main()
