"""Scenario: choosing a bus/number encoding with the Hd model.

Classic low-power question (the optimization context of the paper's
introduction): a 12-bit bus carries (a) a low-amplitude sensor signal and
(b) an address-counter stream into registered consumers.  Which encoding —
two's complement, sign-magnitude, Gray, or bus-invert — burns the least
power?  The Hd macro-model answers from bit statistics alone; the
gate-level simulator confirms.

Run:  python examples/bus_encoding_study.py
"""

import numpy as np

from repro.circuit import PowerSimulator
from repro.core import characterize_module, classify_transitions
from repro.modules import make_module
from repro.signals import counter_stream, gaussian_stream
from repro.signals.codes import (
    bus_invert_bits,
    gray_bits,
    sign_magnitude_bits,
    twos_complement_bits,
)

WIDTH = 12


def main() -> None:
    module = make_module("register_bank", WIDTH)
    model = characterize_module(module, n_patterns=3000, seed=1).model
    sim = PowerSimulator(module.compiled)
    # Bus-invert adds one line; its consumer is one bit wider.
    wide = make_module("register_bank", WIDTH + 1)
    wide_model = characterize_module(wide, n_patterns=3000, seed=2).model
    wide_sim = PowerSimulator(wide.compiled)

    workloads = {
        "sensor (small gaussian)": gaussian_stream(
            WIDTH, 8000, rho=0.4, relative_sigma=0.06, seed=3
        ).words,
        "address counter": counter_stream(WIDTH, 8000).words,
    }

    for label, words in workloads.items():
        print(f"\n{label}:")
        print(f"  {'encoding':18s} {'Hd/cycle':>9s} {'model':>8s} "
              f"{'gate':>8s} {'vs 2''s compl':>12s}")
        rows = {}
        for code, bits in (
            ("twos_complement", twos_complement_bits(words, WIDTH)),
            ("sign_magnitude", sign_magnitude_bits(words, WIDTH)),
            ("gray", gray_bits(words, WIDTH)),
        ):
            events = classify_transitions(bits)
            rows[code] = (
                float(events.hd.mean()),
                float(model.predict_cycle(events.hd).mean()),
                sim.simulate(bits).average_charge,
            )
        coded = bus_invert_bits(twos_complement_bits(words, WIDTH))
        events = classify_transitions(coded)
        rows["bus_invert (+1 line)"] = (
            float(events.hd.mean()),
            float(wide_model.predict_cycle(events.hd).mean()),
            wide_sim.simulate(coded).average_charge,
        )
        baseline = rows["twos_complement"][2]
        for code, (hd, est, ref) in rows.items():
            print(f"  {code:18s} {hd:9.2f} {est:8.2f} {ref:8.2f} "
                  f"{(ref / baseline - 1) * 100:+11.1f}%")

    print("\nthe model's ranking equals the simulator's in every case — an "
          "encoding decision needs no gate-level runs at all.")


if __name__ == "__main__":
    main()
