"""Scenario: analytic power budget of a 4-tap FIR filter datapath.

The Section 6 use case end-to-end: starting from the word-level statistics
of the *primary input only*, propagate (μ, σ², ρ) through the filter's
dataflow graph (Section 6.1 / refs [9, 10]), derive each operator's input
Hamming-distance distribution (Eq. 18) and apply the Hd macro-models — a
complete datapath power budget with **zero** gate-level simulation of the
actual workload.  The budget is then validated against full simulation.

Filter:  y[t] = c0 x[t] + c1 x[t-1] + c2 x[t-2] + c3 x[t-3]
realized as constant multiplies feeding an adder tree.

Run:  python examples/fir_filter_budget.py
"""

import numpy as np

from repro.circuit import PowerSimulator
from repro.core import PowerEstimator, characterize_module
from repro.modules import make_module
from repro.signals import PatternStream, gaussian_stream
from repro.stats import DataflowGraph, word_stats

WIDTH = 8
COEFFS = [0.25, 0.75, 0.75, 0.25]  # symmetric low-pass taps


def build_graph(input_stats):
    g = DataflowGraph()
    g.add_input("x0", input_stats)
    g.delay("x1", "x0")
    g.delay("x2", "x1")
    g.delay("x3", "x2")
    for k, c in enumerate(COEFFS):
        g.cmul(f"p{k}", f"x{k}", c)
    g.add("s01", "p0", "p1")
    g.add("s23", "p2", "p3")
    g.add("y", "s01", "s23")
    g.propagate()
    return g


def simulate_filter(x_words):
    """Bit-true filter simulation producing every internal stream."""
    taps = [np.concatenate([np.zeros(k, dtype=np.int64), x_words[: len(x_words) - k]])
            for k in range(4)]
    products = [np.rint(c * tap).astype(np.int64) for c, tap in zip(COEFFS, taps)]
    s01 = products[0] + products[1]
    s23 = products[2] + products[3]
    return taps, products, s01, s23


def main() -> None:
    # The only measurement: word statistics of the primary input.
    x = gaussian_stream(WIDTH, 8000, rho=0.95, relative_sigma=0.22, seed=5)
    stats = word_stats(x.words)
    print(f"input: mu={stats.mean:.1f} sigma={stats.sigma:.1f} "
          f"rho={stats.rho:.3f}")

    graph = build_graph(stats)

    # Datapath operators: the two-level adder tree (the constant
    # multipliers are folded into wiring/shift-adds whose cost we include
    # as adders of the product streams for this budget).
    adder = make_module("ripple_adder", WIDTH + 2)
    characterization = characterize_module(adder, n_patterns=4000, seed=9)
    estimator = PowerEstimator(characterization.model)

    stages = [
        ("s01 = c0*x + c1*x1", "p0", "p1"),
        ("s23 = c2*x2 + c3*x3", "p2", "p3"),
        ("y   = s01 + s23", "s01", "s23"),
    ]
    print(f"\n{'stage':24s} {'analytic':>10s} {'simulated':>10s} {'err':>7s}")

    # Reference simulation for validation.
    taps, products, s01, s23 = simulate_filter(x.words)
    sim_streams = {
        "p0": products[0], "p1": products[1],
        "p2": products[2], "p3": products[3],
        "s01": s01, "s23": s23,
    }
    simulator = PowerSimulator(adder.compiled)
    width = WIDTH + 2

    total_analytic = total_sim = 0.0
    for label, a_name, b_name in stages:
        # Analytic path: propagated word statistics only.
        analytic = estimator.estimate_analytic(
            adder, [graph.stats(a_name), graph.stats(b_name)]
        ).average_charge

        # Validation path: feed the actual internal streams to the
        # gate-level simulator.
        sa = PatternStream(np.clip(sim_streams[a_name], -(1 << width - 1),
                                   (1 << (width - 1)) - 1), width)
        sb = PatternStream(np.clip(sim_streams[b_name], -(1 << width - 1),
                                   (1 << (width - 1)) - 1), width)
        bits = adder.pack_inputs(sa.unsigned(), sb.unsigned())
        simulated = simulator.simulate(bits).average_charge

        err = (analytic / simulated - 1) * 100
        print(f"{label:24s} {analytic:10.1f} {simulated:10.1f} {err:+6.1f}%")
        total_analytic += analytic
        total_sim += simulated

    err = (total_analytic / total_sim - 1) * 100
    print(f"{'TOTAL adder tree':24s} {total_analytic:10.1f} "
          f"{total_sim:10.1f} {err:+6.1f}%")
    print("\nthe analytic column required no workload simulation at all — "
          "only the input's (mu, sigma^2, rho) and one adder "
          "characterization, reusable for any filter built from it.")


if __name__ == "__main__":
    main()
