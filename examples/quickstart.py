"""Quickstart: characterize a datapath module and estimate its power.

Walks the three estimation paths of the library on an 8-bit carry-lookahead
adder fed with a speech-like stream:

1. reference gate-level simulation (the accuracy yardstick),
2. trace-based Hd-model estimation,
3. fully analytic estimation from word-level statistics (no simulation).

Run:  python examples/quickstart.py
"""

from repro.circuit import PowerSimulator
from repro.core import PowerEstimator, characterize_module
from repro.modules import make_module
from repro.signals import make_operand_streams, module_stimulus


def main() -> None:
    # 1. Build a module from the library (DesignWare-style generator).
    module = make_module("cla_adder", 8)
    print(f"module: {module.netlist.name}  "
          f"({module.netlist.n_gates} gates, {module.input_bits} input bits)")

    # 2. Characterize it once with random patterns (Section 4.1 of the
    #    paper).  This fits one power coefficient per Hamming-distance
    #    class.
    result = characterize_module(module, n_patterns=4000, seed=0)
    model = result.model
    print(f"characterized with {result.n_patterns} patterns "
          f"(converged: {result.converged})")
    print("coefficients p_i:",
          [round(float(p), 1) for p in model.coefficients])
    print(f"total average deviation eps = "
          f"{model.total_average_deviation * 100:.1f}%")

    # 3. Build a workload: one speech-class stream per operand.
    streams = make_operand_streams(module, "III", n=5000, seed=42)
    bits = module_stimulus(module, streams)

    # 4. Reference: glitch-aware gate-level power simulation.
    reference = PowerSimulator(module.compiled).simulate(bits)
    print(f"\nreference average charge : {reference.average_charge:10.2f}")

    # 5. Hd-model estimate from the concrete trace.
    estimator = PowerEstimator(model)
    trace_est = estimator.estimate_from_streams(module, streams)
    err = (trace_est.average_charge / reference.average_charge - 1) * 100
    print(f"trace-based estimate     : {trace_est.average_charge:10.2f} "
          f"({err:+.1f}%)")

    # 6. Fully analytic: word-level statistics -> DBT model -> Hd
    #    distribution (Eq. 18) -> power.  No simulation anywhere.
    analytic = estimator.estimate_analytic_from_streams(module, streams)
    err = (analytic.average_charge / reference.average_charge - 1) * 100
    print(f"analytic estimate        : {analytic.average_charge:10.2f} "
          f"({err:+.1f}%)")


if __name__ == "__main__":
    main()
