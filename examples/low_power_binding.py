"""Scenario: resource binding for low power, driven by the Hd model.

The paper's introduction motivates the model with exactly this task
(refs [5-8]): when several operations share a pool of functional units,
*which* operation runs on *which* unit each cycle determines the Hamming
distance each unit sees — and hence its power.  The macro-model makes the
cost of every candidate assignment computable in microseconds, so a binder
can search; gate-level simulation then confirms the decision.

Here three streams of multiplications (two slowly-varying speech-like
channels and one random channel) share three 8x8 multipliers.

Run:  python examples/low_power_binding.py
"""

import numpy as np

from repro.core import characterize_module
from repro.modules import make_module
from repro.opt import (
    BindingProblem,
    evaluate_binding,
    greedy_binding,
    identity_binding,
    random_binding,
)
from repro.signals import make_stream


def main() -> None:
    module = make_module("csa_multiplier", 8)
    print(f"unit: {module.netlist.name} ({module.netlist.n_gates} gates), "
          "3 instances")
    model = characterize_module(module, n_patterns=5000, seed=1).model

    operations = []
    labels = []
    for kind, seed in (("III", 3), ("III", 4), ("I", 5)):
        a = make_stream(kind, 8, 2000, seed=seed).unsigned()
        b = make_stream(kind, 8, 2000, seed=seed + 50).unsigned()
        operations.append((a, b))
        labels.append({"III": "speech", "I": "random"}[kind])
    print("operations:", ", ".join(labels))
    problem = BindingProblem(module, model, tuple(operations))

    bindings = {
        "identity (fixed)": identity_binding(problem),
        "random": random_binding(problem, seed=9),
        "greedy (Hd-model driven)": greedy_binding(problem),
    }
    print(f"\n{'binding':26s} {'model estimate':>15s} "
          f"{'gate-level':>12s} {'saving':>8s}")
    reference = None
    for label, assignment in bindings.items():
        result = evaluate_binding(problem, assignment, gate_level=True)
        if reference is None:
            reference = result.simulated_total
        saving = (1 - result.simulated_total / reference) * 100
        print(f"{label:26s} {result.estimated_total:15.0f} "
              f"{result.simulated_total:12.0f} {saving:+7.1f}%")

    print("\nthe greedy binder keeps each correlated stream on 'its' unit "
          "(small Hd) instead of ping-ponging operands across units, and "
          "the gate-level numbers confirm the model-driven choice.")


if __name__ == "__main__":
    main()
